package tpch

import (
	"fmt"

	"wimpi/internal/colstore"
	"wimpi/internal/engine"
)

// Date constants from the TPC-H specification.
var (
	// StartDate is the earliest order date.
	StartDate = colstore.MustDate("1992-01-01")
	// lastOrderDate is the latest order date (ENDDATE - 151 days).
	lastOrderDate = colstore.MustDate("1998-08-02")
	// CurrentDate is the spec's [CURRENTDATE] used to derive return
	// flags and line statuses.
	CurrentDate = colstore.MustDate("1995-06-17")
)

// Stream tags keeping per-table RNG streams independent.
const (
	tagOrder uint64 = iota + 1
	tagCustomer
	tagPart
	tagSupplier
	tagPartsupp
	tagNation
	tagRegion
)

// Config parameterizes data generation.
type Config struct {
	// SF is the scale factor; SF 1 is roughly one gigabyte of raw data
	// (6M lineitem rows).
	SF float64
	// Seed makes datasets reproducible; two configs with equal SF and
	// Seed generate identical data.
	Seed uint64
}

// Counts returns the table cardinalities at the configured scale factor.
func (c Config) Counts() (suppliers, parts, customers, orders int) {
	scale := func(base int) int {
		n := int(c.SF * float64(base))
		if n < 1 {
			n = 1
		}
		return n
	}
	return scale(10000), scale(200000), scale(150000), scale(1500000)
}

// RetailPrice returns p_retailprice for a part key, per the spec formula.
// l_extendedprice is derived from it, tying lineitem prices to parts.
func RetailPrice(partkey int64) float64 {
	return float64(90000+(partkey/10)%20001+100*(partkey%1000)) / 100
}

// SuppForPart returns the i-th (0..3) supplier of a part, per the spec
// formula. The same formula generates partsupp rows and picks l_suppkey,
// so lineitem⋈partsupp on (partkey, suppkey) always matches.
func SuppForPart(partkey int64, i int, suppliers int) int64 {
	s := int64(suppliers)
	return (partkey+int64(i)*(s/4+(partkey-1)/s))%s + 1
}

// Dataset is a generated set of TPC-H tables.
type Dataset struct {
	// Tables maps table names to data.
	Tables map[string]*colstore.Table
	// Config records how the dataset was generated.
	Config Config
}

// RegisterAll registers every table with db.
func (d *Dataset) RegisterAll(db *engine.DB) {
	for _, t := range d.Tables {
		db.Register(t)
	}
}

// SizeBytes reports the total column data footprint.
func (d *Dataset) SizeBytes() int64 {
	var n int64
	for _, t := range d.Tables {
		n += t.SizeBytes()
	}
	return n
}

// Generate builds a complete TPC-H dataset.
func Generate(cfg Config) *Dataset {
	return generate(cfg, 0, 1)
}

// GeneratePartition builds the dataset held by one node of an N-node
// cluster using the paper's layout: lineitem is partitioned by
// l_orderkey (rows with l_orderkey %% numNodes == node), and every other
// table is fully replicated. Generation is deterministic per order key,
// so the union of all partitions equals the single-node dataset exactly.
func GeneratePartition(cfg Config, node, numNodes int) (*Dataset, error) {
	if numNodes < 1 || node < 0 || node >= numNodes {
		return nil, fmt.Errorf("tpch: invalid partition %d of %d", node, numNodes)
	}
	return generate(cfg, node, numNodes), nil
}

// PartitionFromFull derives node's partition from an already-generated
// full dataset: the lineitem rows with l_orderkey %% numNodes == node are
// materialized, and every other table is shared (zero copy). The result
// equals GeneratePartition with the same configuration; in-process
// clusters use it to avoid holding one replica of the dimension tables
// per worker.
func PartitionFromFull(full *Dataset, node, numNodes int) (*Dataset, error) {
	if numNodes < 1 || node < 0 || node >= numNodes {
		return nil, fmt.Errorf("tpch: invalid partition %d of %d", node, numNodes)
	}
	d := &Dataset{Tables: make(map[string]*colstore.Table, 8), Config: full.Config}
	for name, t := range full.Tables {
		if name != "lineitem" {
			d.Tables[name] = t
		}
	}
	li := full.Tables["lineitem"]
	keys := li.MustCol("l_orderkey").(*colstore.Int64s).V
	sel := make([]int32, 0, len(keys)/numNodes+1)
	for i, k := range keys {
		if int(k%int64(numNodes)) == node {
			sel = append(sel, int32(i))
		}
	}
	part := li.Gather(sel)
	part.Name = "lineitem"
	d.Tables["lineitem"] = part
	return d, nil
}

func generate(cfg Config, node, numNodes int) *Dataset {
	suppliers, parts, customers, orders := cfg.Counts()
	d := &Dataset{Tables: make(map[string]*colstore.Table, 8), Config: cfg}
	d.Tables["region"] = genRegion(cfg)
	d.Tables["nation"] = genNation(cfg)
	d.Tables["supplier"] = genSupplier(cfg, suppliers)
	d.Tables["part"] = genPart(cfg, parts)
	d.Tables["partsupp"] = genPartsupp(cfg, parts, suppliers)
	d.Tables["customer"] = genCustomer(cfg, customers)
	ord, li := genOrdersAndLineitem(cfg, orders, customers, parts, suppliers, node, numNodes)
	d.Tables["orders"] = ord
	d.Tables["lineitem"] = li
	return d
}

func genRegion(cfg Config) *colstore.Table {
	b := colstore.NewTableBuilder("region", RegionSchema)
	for i, name := range regions {
		r := newRNG(mix(cfg.Seed, tagRegion, uint64(i)))
		b.Int(0, int64(i))
		b.Str(1, name)
		b.Str(2, comment(r))
		b.EndRow()
	}
	return b.Build()
}

func genNation(cfg Config) *colstore.Table {
	b := colstore.NewTableBuilder("nation", NationSchema)
	for i, n := range nations {
		r := newRNG(mix(cfg.Seed, tagNation, uint64(i)))
		b.Int(0, int64(i))
		b.Str(1, n.name)
		b.Int(2, int64(n.region))
		b.Str(3, comment(r))
		b.EndRow()
	}
	return b.Build()
}

func genSupplier(cfg Config, n int) *colstore.Table {
	b := colstore.NewTableBuilder("supplier", SupplierSchema)
	b.Grow(n)
	for k := 1; k <= n; k++ {
		r := newRNG(mix(cfg.Seed, tagSupplier, uint64(k)))
		nation := r.intn(len(nations))
		b.Int(0, int64(k))
		b.Str(1, fmt.Sprintf("Supplier#%09d", k))
		b.Str(2, address(r))
		b.Int(3, int64(nation))
		b.Str(4, phone(r, nation))
		b.Float(5, r.decimal(-999.99, 9999.99))
		b.Str(6, supplierComment(r))
		b.EndRow()
	}
	return b.Build()
}

func genPart(cfg Config, n int) *colstore.Table {
	b := colstore.NewTableBuilder("part", PartSchema)
	b.Grow(n)
	for k := 1; k <= n; k++ {
		r := newRNG(mix(cfg.Seed, tagPart, uint64(k)))
		b.Int(0, int64(k))
		b.Str(1, partName(r))
		b.Str(2, fmt.Sprintf("Manufacturer#%d", r.rangeInt(1, 5)))
		b.Str(3, brand(r))
		b.Str(4, partType(r))
		b.Int(5, int64(r.rangeInt(1, 50)))
		b.Str(6, container(r))
		b.Float(7, RetailPrice(int64(k)))
		b.Str(8, comment(r))
		b.EndRow()
	}
	return b.Build()
}

func genPartsupp(cfg Config, parts, suppliers int) *colstore.Table {
	b := colstore.NewTableBuilder("partsupp", PartsuppSchema)
	b.Grow(parts * 4)
	for p := 1; p <= parts; p++ {
		r := newRNG(mix(cfg.Seed, tagPartsupp, uint64(p)))
		for i := 0; i < 4; i++ {
			b.Int(0, int64(p))
			b.Int(1, SuppForPart(int64(p), i, suppliers))
			b.Int(2, int64(r.rangeInt(1, 9999)))
			b.Float(3, r.decimal(1.00, 1000.00))
			b.Str(4, comment(r))
			b.EndRow()
		}
	}
	return b.Build()
}

func genCustomer(cfg Config, n int) *colstore.Table {
	b := colstore.NewTableBuilder("customer", CustomerSchema)
	b.Grow(n)
	for k := 1; k <= n; k++ {
		r := newRNG(mix(cfg.Seed, tagCustomer, uint64(k)))
		nation := r.intn(len(nations))
		b.Int(0, int64(k))
		b.Str(1, fmt.Sprintf("Customer#%09d", k))
		b.Str(2, address(r))
		b.Int(3, int64(nation))
		b.Str(4, phone(r, nation))
		b.Float(5, r.decimal(-999.99, 9999.99))
		b.Str(6, pick(r, segments))
		b.Str(7, comment(r))
		b.EndRow()
	}
	return b.Build()
}

// custForOrder draws an o_custkey; per the spec, customers whose key is a
// multiple of three place no orders (one third of customers — the Q13
// zero bucket).
func custForOrder(r *rng, customers int) int64 {
	for {
		c := int64(r.rangeInt(1, customers))
		if customers < 3 || c%3 != 0 {
			return c
		}
	}
}

func genOrdersAndLineitem(cfg Config, orders, customers, parts, suppliers, node, numNodes int) (*colstore.Table, *colstore.Table) {
	ob := colstore.NewTableBuilder("orders", OrdersSchema)
	ob.Grow(orders)
	lb := colstore.NewTableBuilder("lineitem", LineitemSchema)
	lb.Grow(orders * 4 / numNodes)

	for ok := 1; ok <= orders; ok++ {
		r := newRNG(mix(cfg.Seed, tagOrder, uint64(ok)))
		cust := custForOrder(r, customers)
		odate := StartDate + int32(r.intn(int(lastOrderDate-StartDate)+1))
		nlines := r.rangeInt(1, 7)
		mine := int(int64(ok)%int64(numNodes)) == node

		var total float64
		allF, allO := true, true
		for ln := 1; ln <= nlines; ln++ {
			partkey := int64(r.rangeInt(1, parts))
			suppkey := SuppForPart(partkey, r.intn(4), suppliers)
			qty := float64(r.rangeInt(1, 50))
			extprice := qty * RetailPrice(partkey)
			disc := float64(r.rangeInt(0, 10)) / 100
			tax := float64(r.rangeInt(0, 8)) / 100
			shipdate := odate + int32(r.rangeInt(1, 121))
			commitdate := odate + int32(r.rangeInt(30, 90))
			receiptdate := shipdate + int32(r.rangeInt(1, 30))

			var rf string
			if receiptdate <= CurrentDate {
				if r.chance(0.5) {
					rf = "R"
				} else {
					rf = "A"
				}
			} else {
				rf = "N"
			}
			var ls string
			if shipdate > CurrentDate {
				ls = "O"
				allF = false
			} else {
				ls = "F"
				allO = false
			}
			total += extprice * (1 + tax) * (1 - disc)

			// Draw text fields unconditionally so the RNG stream does
			// not depend on partition membership.
			instruct := pick(r, shipInstructs)
			mode := pick(r, shipModes)
			lcomment := comment(r)
			if !mine {
				continue
			}
			lb.Int(0, int64(ok))
			lb.Int(1, partkey)
			lb.Int(2, suppkey)
			lb.Int(3, int64(ln))
			lb.Float(4, qty)
			lb.Float(5, extprice)
			lb.Float(6, disc)
			lb.Float(7, tax)
			lb.Str(8, rf)
			lb.Str(9, ls)
			lb.Date(10, shipdate)
			lb.Date(11, commitdate)
			lb.Date(12, receiptdate)
			lb.Str(13, instruct)
			lb.Str(14, mode)
			lb.Str(15, lcomment)
			lb.EndRow()
		}

		status := "P"
		if allF {
			status = "F"
		} else if allO {
			status = "O"
		}
		ob.Int(0, int64(ok))
		ob.Int(1, cust)
		ob.Str(2, status)
		ob.Float(3, total)
		ob.Date(4, odate)
		ob.Str(5, pick(r, priorities))
		ob.Str(6, clerk(r, cfg.SF))
		ob.Int(7, 0)
		ob.Str(8, orderComment(r))
		ob.EndRow()
	}
	return ob.Build(), lb.Build()
}

// CompressKeys returns a copy of the dataset with lineitem's sorted key
// columns (l_orderkey) run-length encoded — the paper's Section III-C.2
// suggestion of spending CPU on heavier compression to relieve the Pi's
// memory-bandwidth bottleneck. Query plans work unchanged: the engine's
// kernels handle RLE columns natively for selections and key extraction
// and decode on demand elsewhere.
func CompressKeys(d *Dataset) *Dataset {
	out := &Dataset{Tables: make(map[string]*colstore.Table, len(d.Tables)), Config: d.Config}
	for name, t := range d.Tables {
		out.Tables[name] = t
	}
	li := d.Tables["lineitem"]
	cols := make([]colstore.Column, len(li.Cols))
	copy(cols, li.Cols)
	idx := li.Schema.Index("l_orderkey")
	cols[idx] = colstore.CompressInt64(li.Cols[idx].(*colstore.Int64s))
	out.Tables["lineitem"] = colstore.MustNewTable("lineitem", li.Schema, cols)
	return out
}
