// Package tpch implements the TPC-H workload used throughout the paper's
// evaluation: a deterministic, scale-factor-parameterized data generator
// for all eight tables, physical plans for all twenty-two queries, a
// naive row-at-a-time reference implementation used as a correctness
// oracle, and distributed (partial + merge) variants of the eight
// representative queries evaluated on the WimPi cluster.
//
// The generator follows the TPC-H specification's cardinalities and value
// distributions. It deliberately deviates in one respect: free-text
// fields (comments, addresses) are drawn from a bounded vocabulary so
// that dictionary encoding stays compact, while the selectivities of the
// text predicates the queries actually use (Q9 '%green%', Q13
// '%special%requests%', Q16 '%Customer%Complaints%', Q20 'forest%') are
// preserved by explicit pattern injection at the spec's rates.
package tpch

// rng is a splitmix64 pseudo-random generator. Each entity (order, part,
// customer, ...) seeds its own rng from the dataset seed and its primary
// key, so any row can be regenerated independently — the property that
// lets cluster nodes build consistent partitions without exchanging data.
type rng struct {
	state uint64
}

// newRNG returns a generator for the given stream. The stream is usually
// mix(seed, tableTag, primaryKey).
func newRNG(stream uint64) *rng { return &rng{state: stream} }

// mix combines values into a well-distributed 64-bit stream identifier.
func mix(vs ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
	}
	return h
}

// next returns the next raw 64-bit value.
func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// rangeInt returns a uniform integer in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int {
	return lo + r.intn(hi-lo+1)
}

// float returns a uniform float in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// decimal returns a uniform value in [lo, hi] rounded to two decimal
// places, the TPC-H money type.
func (r *rng) decimal(lo, hi float64) float64 {
	cents := int64(lo*100) + int64(r.next()%uint64((hi-lo)*100+1))
	return float64(cents) / 100
}

// pick returns a uniform element of choices.
func pick[T any](r *rng, choices []T) T {
	return choices[r.intn(len(choices))]
}

// chance returns true with probability p.
func (r *rng) chance(p float64) bool { return r.float() < p }
