package tpch

import (
	"testing"

	"wimpi/internal/colstore"
)

const testSF = 0.01

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	return Generate(Config{SF: testSF, Seed: 42})
}

func TestGenerateCardinalities(t *testing.T) {
	d := testDataset(t)
	s, p, c, o := d.Config.Counts()
	if s != 100 || p != 2000 || c != 1500 || o != 15000 {
		t.Fatalf("counts = %d %d %d %d", s, p, c, o)
	}
	if got := d.Tables["supplier"].NumRows(); got != s {
		t.Errorf("supplier rows = %d, want %d", got, s)
	}
	if got := d.Tables["part"].NumRows(); got != p {
		t.Errorf("part rows = %d, want %d", got, p)
	}
	if got := d.Tables["partsupp"].NumRows(); got != p*4 {
		t.Errorf("partsupp rows = %d, want %d", got, p*4)
	}
	if got := d.Tables["customer"].NumRows(); got != c {
		t.Errorf("customer rows = %d, want %d", got, c)
	}
	if got := d.Tables["orders"].NumRows(); got != o {
		t.Errorf("orders rows = %d, want %d", got, o)
	}
	li := d.Tables["lineitem"].NumRows()
	if li < o || li > o*7 {
		t.Errorf("lineitem rows = %d, outside [%d, %d]", li, o, o*7)
	}
	// Average lines per order should be close to 4.
	avg := float64(li) / float64(o)
	if avg < 3.7 || avg > 4.3 {
		t.Errorf("avg lines/order = %.2f", avg)
	}
	if d.Tables["nation"].NumRows() != 25 || d.Tables["region"].NumRows() != 5 {
		t.Error("nation/region cardinality wrong")
	}
	if d.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{SF: 0.001, Seed: 7})
	b := Generate(Config{SF: 0.001, Seed: 7})
	for _, name := range TableNames {
		ta, tb := a.Tables[name], b.Tables[name]
		if ta.NumRows() != tb.NumRows() {
			t.Fatalf("%s: row counts differ", name)
		}
		for ci := range ta.Cols {
			for r := 0; r < ta.NumRows(); r++ {
				if cellOf(ta.Cols[ci], r) != cellOf(tb.Cols[ci], r) {
					t.Fatalf("%s col %d row %d differs", name, ci, r)
				}
			}
		}
	}
	c := Generate(Config{SF: 0.001, Seed: 8})
	diff := false
	la, lc := a.Tables["lineitem"], c.Tables["lineitem"]
	for r := 0; r < min(la.NumRows(), lc.NumRows()) && !diff; r++ {
		if cellOf(la.Cols[4], r) != cellOf(lc.Cols[4], r) {
			diff = true
		}
	}
	if !diff && la.NumRows() == lc.NumRows() {
		t.Error("different seeds produced identical lineitem quantities")
	}
}

func TestPartitionUnionEqualsWhole(t *testing.T) {
	cfg := Config{SF: 0.002, Seed: 13}
	whole := Generate(cfg)
	numNodes := 3
	var liRowsTotal int
	seen := map[int64]int{} // orderkey -> partition rows
	for node := 0; node < numNodes; node++ {
		part, err := GeneratePartition(cfg, node, numNodes)
		if err != nil {
			t.Fatal(err)
		}
		li := part.Tables["lineitem"]
		liRowsTotal += li.NumRows()
		ok := colI(li, "l_orderkey")
		for _, k := range ok {
			if int(k%int64(numNodes)) != node {
				t.Fatalf("node %d holds orderkey %d", node, k)
			}
			seen[k]++
		}
		// Replicated tables match the whole dataset.
		for _, name := range []string{"orders", "customer", "part", "supplier", "partsupp", "nation", "region"} {
			if part.Tables[name].NumRows() != whole.Tables[name].NumRows() {
				t.Fatalf("node %d: %s not fully replicated", node, name)
			}
		}
	}
	if liRowsTotal != whole.Tables["lineitem"].NumRows() {
		t.Fatalf("partition union = %d rows, whole = %d", liRowsTotal, whole.Tables["lineitem"].NumRows())
	}
	// Partition content equals the whole table's rows for those orders:
	// spot check per-order line counts.
	wholeCounts := map[int64]int{}
	for _, k := range colI(whole.Tables["lineitem"], "l_orderkey") {
		wholeCounts[k]++
	}
	for k, n := range seen {
		if wholeCounts[k] != n {
			t.Fatalf("orderkey %d: partition has %d lines, whole has %d", k, n, wholeCounts[k])
		}
	}

	if _, err := GeneratePartition(cfg, 3, 3); err == nil {
		t.Error("out-of-range partition should error")
	}
	if _, err := GeneratePartition(cfg, 0, 0); err == nil {
		t.Error("zero nodes should error")
	}
}

func TestLineitemConsistency(t *testing.T) {
	d := testDataset(t)
	li := d.Tables["lineitem"]
	suppliers := d.Tables["supplier"].NumRows()
	parts := d.Tables["part"].NumRows()
	orderkeys := colI(li, "l_orderkey")
	partkeys := colI(li, "l_partkey")
	suppkeys := colI(li, "l_suppkey")
	qty := colF(li, "l_quantity")
	extprice := colF(li, "l_extendedprice")
	disc := colF(li, "l_discount")
	ship := colD(li, "l_shipdate")
	commit := colD(li, "l_commitdate")
	receipt := colD(li, "l_receiptdate")
	rf := colS(li, "l_returnflag")
	ls := colS(li, "l_linestatus")

	// Valid partsupp pairs.
	psPairs := map[[2]int64]bool{}
	ps := d.Tables["partsupp"]
	pk := colI(ps, "ps_partkey")
	sk := colI(ps, "ps_suppkey")
	for i := range pk {
		psPairs[[2]int64{pk[i], sk[i]}] = true
	}

	ordDates := map[int64]int32{}
	o := d.Tables["orders"]
	for i, k := range colI(o, "o_orderkey") {
		ordDates[k] = colD(o, "o_orderdate")[i]
	}

	for i := 0; i < li.NumRows(); i++ {
		if partkeys[i] < 1 || partkeys[i] > int64(parts) {
			t.Fatalf("row %d: partkey %d out of range", i, partkeys[i])
		}
		if suppkeys[i] < 1 || suppkeys[i] > int64(suppliers) {
			t.Fatalf("row %d: suppkey %d out of range", i, suppkeys[i])
		}
		if !psPairs[[2]int64{partkeys[i], suppkeys[i]}] {
			t.Fatalf("row %d: (part %d, supp %d) not in partsupp", i, partkeys[i], suppkeys[i])
		}
		if qty[i] < 1 || qty[i] > 50 {
			t.Fatalf("row %d: quantity %f", i, qty[i])
		}
		want := qty[i] * RetailPrice(partkeys[i])
		if diff := extprice[i] - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("row %d: extendedprice %f, want %f", i, extprice[i], want)
		}
		if disc[i] < 0 || disc[i] > 0.10001 {
			t.Fatalf("row %d: discount %f", i, disc[i])
		}
		od := ordDates[orderkeys[i]]
		if ship[i] <= od || ship[i] > od+121 {
			t.Fatalf("row %d: shipdate not in (orderdate, +121]", i)
		}
		if receipt[i] <= ship[i] || receipt[i] > ship[i]+30 {
			t.Fatalf("row %d: receiptdate invalid", i)
		}
		if commit[i] < od+30 || commit[i] > od+90 {
			t.Fatalf("row %d: commitdate invalid", i)
		}
		if receipt[i] <= CurrentDate && rf[i] == "N" {
			t.Fatalf("row %d: returnflag N for past receipt", i)
		}
		if receipt[i] > CurrentDate && rf[i] != "N" {
			t.Fatalf("row %d: returnflag %s for future receipt", i, rf[i])
		}
		if (ship[i] > CurrentDate) != (ls[i] == "O") {
			t.Fatalf("row %d: linestatus %s inconsistent", i, ls[i])
		}
	}
}

func TestOrdersConsistency(t *testing.T) {
	d := testDataset(t)
	o := d.Tables["orders"]
	customers := d.Tables["customer"].NumRows()
	ck := colI(o, "o_custkey")
	status := colS(o, "o_orderstatus")
	total := colF(o, "o_totalprice")

	// Aggregate lineitem charges per order.
	li := d.Tables["lineitem"]
	liOk := colI(li, "l_orderkey")
	ext := colF(li, "l_extendedprice")
	disc := colF(li, "l_discount")
	tax := colF(li, "l_tax")
	ls := colS(li, "l_linestatus")
	charges := map[int64]float64{}
	statuses := map[int64]map[string]bool{}
	for i := range liOk {
		charges[liOk[i]] += ext[i] * (1 + tax[i]) * (1 - disc[i])
		if statuses[liOk[i]] == nil {
			statuses[liOk[i]] = map[string]bool{}
		}
		statuses[liOk[i]][ls[i]] = true
	}
	for i, k := range colI(o, "o_orderkey") {
		if ck[i] < 1 || ck[i] > int64(customers) {
			t.Fatalf("order %d: custkey %d out of range", k, ck[i])
		}
		if customers >= 3 && ck[i]%3 == 0 {
			t.Fatalf("order %d: custkey %d is a multiple of 3", k, ck[i])
		}
		if diff := total[i] - charges[k]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("order %d: totalprice %f, lineitems sum to %f", k, total[i], charges[k])
		}
		st := statuses[k]
		switch {
		case st["F"] && !st["O"]:
			if status[i] != "F" {
				t.Fatalf("order %d: status %s, want F", k, status[i])
			}
		case st["O"] && !st["F"]:
			if status[i] != "O" {
				t.Fatalf("order %d: status %s, want O", k, status[i])
			}
		default:
			if status[i] != "P" {
				t.Fatalf("order %d: status %s, want P", k, status[i])
			}
		}
	}
}

func TestTextPatternsInjected(t *testing.T) {
	d := Generate(Config{SF: 0.1, Seed: 3})
	// Each of the 16 Q13 word pairs lands in roughly 0.5% of comments.
	cm := colS(d.Tables["orders"], "o_comment")
	var special int
	for _, s := range cm {
		if matchSpecialRequests(s) {
			special++
		}
	}
	frac := float64(special) / float64(len(cm))
	if frac < 0.002 || frac > 0.02 {
		t.Errorf("special-requests fraction = %f", frac)
	}
	for _, w1 := range q13Words1 {
		var n int
		for _, s := range cm {
			if matchWordPair(s, w1, "deposits") {
				n++
			}
		}
		if f := float64(n) / float64(len(cm)); f < 0.001 || f > 0.02 {
			t.Errorf("pattern %%%s%%deposits%% fraction = %f", w1, f)
		}
	}
	// Q22 phone country codes are nationkey+10.
	cust := d.Tables["customer"]
	phones := colS(cust, "c_phone")
	nk := colI(cust, "c_nationkey")
	for i := range phones {
		want := int64(phones[i][0]-'0')*10 + int64(phones[i][1]-'0')
		if want != nk[i]+10 {
			t.Fatalf("phone %s for nation %d", phones[i], nk[i])
		}
	}
}

func TestSuppForPartInRange(t *testing.T) {
	for _, s := range []int{100, 10000} {
		for p := int64(1); p <= 200; p++ {
			seen := map[int64]bool{}
			for i := 0; i < 4; i++ {
				sk := SuppForPart(p, i, s)
				if sk < 1 || sk > int64(s) {
					t.Fatalf("SuppForPart(%d, %d, %d) = %d", p, i, s, sk)
				}
				seen[sk] = true
			}
			if len(seen) < 2 {
				t.Fatalf("part %d has too few distinct suppliers", p)
			}
		}
	}
}

func cellOf(c colstore.Column, r int) any {
	switch col := c.(type) {
	case *colstore.Int64s:
		return col.V[r]
	case *colstore.Float64s:
		return col.V[r]
	case *colstore.Dates:
		return col.V[r]
	case *colstore.Strings:
		return col.Value(r)
	case *colstore.Bools:
		return col.V[r]
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPartitionFromFullEqualsGenerated(t *testing.T) {
	cfg := Config{SF: 0.002, Seed: 5}
	full := Generate(cfg)
	for node := 0; node < 3; node++ {
		gen, err := GeneratePartition(cfg, node, 3)
		if err != nil {
			t.Fatal(err)
		}
		derived, err := PartitionFromFull(full, node, 3)
		if err != nil {
			t.Fatal(err)
		}
		gl, dl := gen.Tables["lineitem"], derived.Tables["lineitem"]
		if gl.NumRows() != dl.NumRows() {
			t.Fatalf("node %d: %d vs %d lineitem rows", node, gl.NumRows(), dl.NumRows())
		}
		for ci := range gl.Cols {
			for r := 0; r < gl.NumRows(); r++ {
				if cellOf(gl.Cols[ci], r) != cellOf(dl.Cols[ci], r) {
					t.Fatalf("node %d: lineitem col %d row %d differs", node, ci, r)
				}
			}
		}
		// Replicated tables are shared, not copied.
		if derived.Tables["orders"] != full.Tables["orders"] {
			t.Error("orders should be shared zero-copy")
		}
	}
	if _, err := PartitionFromFull(full, 3, 3); err == nil {
		t.Error("out-of-range node should error")
	}
}
