package tpch

import (
	"fmt"

	"wimpi/internal/colstore"
)

// SQL returns the SQL text for TPC-H query n (1..22), phrased so that
// the frontend's canonical lowering reproduces the hand-built plan of
// Query(n) byte-for-byte. The texts follow the frontend's conventions:
// the first FROM item is the probe spine, GROUP BY names output
// aliases, and scalar-subquery arithmetic mirrors the hand-built
// threshold expressions exactly (same association order, so identical
// float bits).
func SQL(n int) (string, error) { return SQLP(n, DefaultParams()) }

// SQLP returns the SQL text for query n with the given substitution
// parameters. As with QueryP, only the eight representative queries are
// parameterized; the rest use their validation values regardless.
func SQLP(n int, p Params) (string, error) {
	if n < 1 || n > len(sqlBuilders) || sqlBuilders[n-1] == nil {
		return "", fmt.Errorf("tpch: no query %d", n)
	}
	return sqlBuilders[n-1](p), nil
}

// MustSQL is SQL for known-valid numbers.
func MustSQL(n int) string {
	s, err := SQL(n)
	if err != nil {
		panic(err)
	}
	return s
}

// TableKeys declares the base tables' unique keys for the planner
// (sql.Options.UniqueKeys). Lineitem has none.
func TableKeys() map[string][]string {
	return map[string][]string{
		"region":   {"r_regionkey"},
		"nation":   {"n_nationkey"},
		"supplier": {"s_suppkey"},
		"customer": {"c_custkey"},
		"part":     {"p_partkey"},
		"partsupp": {"ps_partkey", "ps_suppkey"},
		"orders":   {"o_orderkey"},
	}
}

var sqlBuilders = [22]func(Params) string{
	sql1, sql2, sql3, sql4, sql5, sql6, sql7, sql8, sql9, sql10, sql11,
	sql12, sql13, sql14, sql15, sql16, sql17, sql18, sql19, sql20, sql21, sql22,
}

// ds renders an int32 date as a SQL date literal body.
func ds(d int32) string { return colstore.FormatDate(d) }

func sql1(p Params) string {
	return fmt.Sprintf(`
select l_returnflag, l_linestatus,
  sum(l_quantity) as sum_qty,
  sum(l_extendedprice) as sum_base_price,
  sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
  sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
  avg(l_quantity) as avg_qty,
  avg(l_extendedprice) as avg_price,
  avg(l_discount) as avg_disc,
  count(*) as count_order
from lineitem
where l_shipdate <= date '1998-12-01' - interval '%d' day
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus`, p.Q1Delta)
}

func sql2(Params) string {
	return `
with offers as (
  select ps_partkey, ps_supplycost, s_acctbal, s_name, s_address, s_phone,
         s_comment, n_name, p_partkey, p_mfgr
  from partsupp, supplier, nation, part
  where s_suppkey = ps_suppkey
    and n_nationkey = s_nationkey
    and n_regionkey in (select r_regionkey from region where r_name = 'EUROPE')
    and p_partkey = ps_partkey
    and p_size = 15
    and p_type like '%BRASS'
),
mincost as (
  select ps_partkey as mc_partkey, min(ps_supplycost) as min_cost
  from offers
  group by mc_partkey
)
select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
from offers, mincost
where mc_partkey = ps_partkey
  and ps_supplycost = min_cost
order by s_acctbal desc, n_name, s_name, p_partkey
limit 100`
}

func sql3(p Params) string {
	return fmt.Sprintf(`
select l_orderkey, o_orderdate, o_shippriority,
  sum(l_extendedprice * (1 - l_discount)) as revenue
from lineitem, orders
where o_orderkey = l_orderkey
  and o_custkey in (select c_custkey from customer where c_mktsegment = '%s')
  and o_orderdate < date '%s'
  and l_shipdate > date '%s'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc, o_orderdate
limit 10`, p.Q3Segment, ds(p.Q3Date), ds(p.Q3Date))
}

func sql4(p Params) string {
	return fmt.Sprintf(`
select o_orderpriority, count(*) as order_count
from orders
where o_orderdate >= date '%s'
  and o_orderdate < date '%s' + interval '3' month
  and o_orderkey in (select l_orderkey from lineitem
                     where l_commitdate < l_receiptdate)
group by o_orderpriority
order by o_orderpriority`, ds(p.Q4Date), ds(p.Q4Date))
}

func sql5(p Params) string {
	return fmt.Sprintf(`
select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
from lineitem, orders, customer, supplier, nation
where l_orderkey = o_orderkey
  and o_custkey = c_custkey
  and l_suppkey = s_suppkey
  and c_nationkey = n_nationkey
  and s_nationkey = c_nationkey
  and n_regionkey in (select r_regionkey from region where r_name = '%s')
  and o_orderdate >= date '%s'
  and o_orderdate < date '%s' + interval '1' year
group by n_name
order by revenue desc`, p.Q5Region, ds(p.Q5Date), ds(p.Q5Date))
}

func sql6(p Params) string {
	lo, hi := q6DiscountBand(p)
	return fmt.Sprintf(`
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '%s'
  and l_shipdate < date '%s' + interval '1' year
  and l_discount between %v and %v
  and l_quantity < %v`, ds(p.Q6Date), ds(p.Q6Date), lo, hi, p.Q6Quantity)
}

func sql7(Params) string {
	return `
select supp_nation, cust_nation, year(l_shipdate) as l_year,
  sum(l_extendedprice * (1 - l_discount)) as revenue
from orders,
  (select l_orderkey, l_extendedprice, l_discount, l_shipdate,
          n_name as supp_nation
   from lineitem, supplier, nation
   where s_suppkey = l_suppkey
     and n_nationkey = s_nationkey
     and n_name in ('FRANCE', 'GERMANY')
     and l_shipdate >= date '1995-01-01'
     and l_shipdate < date '1997-01-01') as lines,
  (select c_custkey, n_name as cust_nation
   from customer, nation
   where n_nationkey = c_nationkey
     and n_name in ('FRANCE', 'GERMANY')) as custs
where l_orderkey = o_orderkey
  and c_custkey = o_custkey
  and ((supp_nation = 'FRANCE' and cust_nation = 'GERMANY')
    or (supp_nation = 'GERMANY' and cust_nation = 'FRANCE'))
group by supp_nation, cust_nation, l_year
order by supp_nation, cust_nation, l_year`
}

func sql8(Params) string {
	return `
select year(o_orderdate) as o_year,
  sum(case when supp_nation = 'BRAZIL'
           then l_extendedprice * (1 - l_discount) else 0 end)
    / sum(l_extendedprice * (1 - l_discount)) as mkt_share
from orders,
  (select l_orderkey, l_suppkey, l_extendedprice, l_discount
   from lineitem, part
   where p_partkey = l_partkey
     and p_type = 'ECONOMY ANODIZED STEEL') as plines,
  (select s_suppkey, n_name as supp_nation
   from supplier, nation
   where n_nationkey = s_nationkey) as snation
where l_orderkey = o_orderkey
  and o_custkey in (select c_custkey from customer
                    where c_nationkey in (select n_nationkey from nation
                        where n_regionkey in (select r_regionkey from region
                            where r_name = 'AMERICA')))
  and s_suppkey = l_suppkey
  and o_orderdate >= date '1995-01-01'
  and o_orderdate < date '1997-01-01'
group by o_year
order by o_year`
}

func sql9(Params) string {
	return `
select n_name as nation, year(o_orderdate) as o_year,
  sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) as sum_profit
from orders,
  (select l_orderkey, l_quantity, l_extendedprice, l_discount,
          ps_supplycost, n_name
   from lineitem, part, partsupp, supplier, nation
   where p_partkey = l_partkey
     and p_name like '%green%'
     and ps_partkey = l_partkey
     and ps_suppkey = l_suppkey
     and s_suppkey = l_suppkey
     and n_nationkey = s_nationkey) as pl
where l_orderkey = o_orderkey
group by nation, o_year
order by nation, o_year desc`
}

func sql10(Params) string {
	return `
select c_custkey, c_name, revenue, c_acctbal, n_name, c_address, c_phone, c_comment
from customer,
  (select o_custkey, sum(l_extendedprice * (1 - l_discount)) as revenue
   from lineitem, orders
   where o_orderkey = l_orderkey
     and o_orderdate >= date '1993-10-01'
     and o_orderdate < date '1993-10-01' + interval '3' month
     and l_returnflag = 'R'
   group by o_custkey) as percust,
  nation
where o_custkey = c_custkey
  and n_nationkey = c_nationkey
order by revenue desc
limit 20`
}

func sql11(Params) string {
	return `
with germanps as (
  select ps_partkey, ps_availqty, ps_supplycost
  from partsupp
  where ps_suppkey in (select s_suppkey from supplier
      where s_nationkey in (select n_nationkey from nation
          where n_name = 'GERMANY'))
)
select ps_partkey, sum(ps_supplycost * ps_availqty) as value
from germanps
group by ps_partkey
having value > (select sum(ps_supplycost * ps_availqty) as t from germanps) * 0.0001
    / ((select count(*) as n from supplier) / 10000)
order by value desc`
}

func sql12(Params) string {
	return `
select l_shipmode,
  sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 1 else 0 end)
    as high_line_count,
  sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 0 else 1 end)
    as low_line_count
from lineitem, orders
where o_orderkey = l_orderkey
  and l_shipmode in ('MAIL', 'SHIP')
  and l_receiptdate >= date '1994-01-01'
  and l_receiptdate < date '1994-01-01' + interval '1' year
  and l_commitdate < l_receiptdate
  and l_shipdate < l_commitdate
group by l_shipmode
order by l_shipmode`
}

func sql13(p Params) string {
	return fmt.Sprintf(`
select c_count, count(*) as custdist
from (select c_custkey, count(o_orderkey) as c_count
      from customer left join orders
        on o_custkey = c_custkey
       and o_comment not like '%%%s%%%s%%'
      group by c_custkey) as counts
group by c_count
order by custdist desc, c_count desc`, p.Q13Word1, p.Q13Word2)
}

func sql14(p Params) string {
	return fmt.Sprintf(`
select 100 * sum(case when p_type like 'PROMO%%'
                      then l_extendedprice * (1 - l_discount) else 0 end)
     / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
from lineitem, part
where p_partkey = l_partkey
  and l_shipdate >= date '%s'
  and l_shipdate < date '%s' + interval '1' month`, ds(p.Q14Date), ds(p.Q14Date))
}

func sql15(Params) string {
	return `
with revenue0 as (
  select l_suppkey, sum(l_extendedprice * (1 - l_discount)) as total_revenue
  from lineitem
  where l_shipdate >= date '1996-01-01'
    and l_shipdate < date '1996-01-01' + interval '3' month
  group by l_suppkey
)
select s_suppkey, s_name, s_address, s_phone, total_revenue
from supplier, revenue0
where l_suppkey = s_suppkey
  and total_revenue >= (select max(total_revenue) as m from revenue0)
order by s_suppkey`
}

func sql16(Params) string {
	return `
select p_brand, p_type, p_size, count(*) as supplier_cnt
from (select p_brand, p_type, p_size, ps_suppkey, count(*) as n
      from partsupp, part
      where p_partkey = ps_partkey
        and p_brand <> 'Brand#45'
        and p_type not like 'MEDIUM POLISHED%'
        and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
        and ps_suppkey not in (select s_suppkey from supplier
            where s_comment like '%Customer%Complaints%')
      group by p_brand, p_type, p_size, ps_suppkey) as dedup
group by p_brand, p_type, p_size
order by supplier_cnt desc, p_brand, p_type, p_size`
}

func sql17(Params) string {
	return `
with lines as (
  select l_partkey, l_quantity, l_extendedprice
  from lineitem, part
  where p_partkey = l_partkey
    and p_brand = 'Brand#23'
    and p_container = 'MED BOX'
),
avgq as (
  select l_partkey as aq_partkey, avg(l_quantity) as avg_qty
  from lines
  group by aq_partkey
)
select sum(l_extendedprice) / 7 as avg_yearly
from lines, avgq
where aq_partkey = l_partkey
  and l_quantity < 0.2 * avg_qty`
}

func sql18(Params) string {
	return `
select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum_qty
from orders,
  (select l_orderkey, sum(l_quantity) as sum_qty
   from lineitem
   group by l_orderkey
   having sum_qty > 300) as big,
  customer
where l_orderkey = o_orderkey
  and c_custkey = o_custkey
order by o_totalprice desc, o_orderdate
limit 100`
}

func sql19(p Params) string {
	return fmt.Sprintf(`
select sum(l_extendedprice * (1 - l_discount)) as revenue
from lineitem, part
where p_partkey = l_partkey
  and l_shipmode in ('AIR', 'AIR REG')
  and l_shipinstruct = 'DELIVER IN PERSON'
  and ((p_brand = '%s'
        and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        and l_quantity between %v and %v
        and p_size between 1 and 5)
    or (p_brand = '%s'
        and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        and l_quantity between %v and %v
        and p_size between 1 and 10)
    or (p_brand = '%s'
        and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        and l_quantity between %v and %v
        and p_size between 1 and 15))`,
		p.Q19Brand1, p.Q19Quantity1, p.Q19Quantity1+10,
		p.Q19Brand2, p.Q19Quantity2, p.Q19Quantity2+10,
		p.Q19Brand3, p.Q19Quantity3, p.Q19Quantity3+10)
}

func sql20(Params) string {
	return `
with shipped as (
  select l_partkey, l_suppkey, sum(l_quantity) as sum_qty
  from lineitem
  where l_shipdate >= date '1994-01-01'
    and l_shipdate < date '1994-01-01' + interval '1' year
  group by l_partkey, l_suppkey
)
select s_name, s_address
from supplier
where s_nationkey in (select n_nationkey from nation where n_name = 'CANADA')
  and s_suppkey in (select ps_suppkey
                    from partsupp, shipped
                    where ps_partkey in (select p_partkey from part
                        where p_name like 'forest%')
                      and l_partkey = ps_partkey
                      and l_suppkey = ps_suppkey
                      and ps_availqty + 0 > 0.5 * sum_qty)
order by s_name`
}

func sql21(Params) string {
	return `
with allsupp as (
  select l_orderkey as all_orderkey, count(*) as nsupp
  from (select l_orderkey, l_suppkey, count(*) as n
        from lineitem
        group by l_orderkey, l_suppkey) as pairs
  group by all_orderkey
),
late as (
  select l_orderkey as late_orderkey, count(*) as nlate
  from (select l_orderkey, l_suppkey, count(*) as n
        from lineitem
        where l_receiptdate > l_commitdate
        group by l_orderkey, l_suppkey) as latepairs
  group by late_orderkey
)
select s_name, count(*) as numwait
from lineitem, supplier, allsupp, late
where l_receiptdate > l_commitdate
  and s_suppkey = l_suppkey
  and s_nationkey in (select n_nationkey from nation
      where n_name = 'SAUDI ARABIA')
  and l_orderkey in (select o_orderkey from orders
      where o_orderstatus = 'F')
  and all_orderkey = l_orderkey
  and late_orderkey = l_orderkey
  and nsupp > 1
  and nlate = 1
group by s_name
order by numwait desc, s_name
limit 100`
}

func sql22(Params) string {
	return `
select cntrycode, count(*) as numcust, sum(c_acctbal) as totacctbal
from (select substring(c_phone, 1, 2) as cntrycode, c_acctbal
      from customer
      where (c_phone like '13%' or c_phone like '31%' or c_phone like '23%'
          or c_phone like '29%' or c_phone like '30%' or c_phone like '18%'
          or c_phone like '17%')
        and c_acctbal > (select avg(c_acctbal) as a from customer
            where (c_phone like '13%' or c_phone like '31%' or c_phone like '23%'
                or c_phone like '29%' or c_phone like '30%' or c_phone like '18%'
                or c_phone like '17%')
              and c_acctbal > 0)
        and c_custkey not in (select o_custkey from orders)) as candidates
group by cntrycode
order by cntrycode`
}
