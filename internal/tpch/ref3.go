package tpch

import (
	"sort"
	"strings"
)

// Q15 reference.
func (r *Reference) Q15() [][]any {
	lo, hi := date("1996-01-01"), date("1996-04-01")
	revs := map[int64]float64{}
	for i := 0; i < r.li.n; i++ {
		if r.li.ship[i] >= lo && r.li.ship[i] < hi {
			revs[r.li.suppkey[i]] += rev(r.li.extprice[i], r.li.disc[i])
		}
	}
	var max float64
	for _, v := range revs {
		if v > max {
			max = v
		}
	}
	suppIdx := map[int64]int{}
	for i := 0; i < r.supp.n; i++ {
		suppIdx[r.supp.suppkey[i]] = i
	}
	var out [][]any
	for sk, v := range revs {
		if v >= max {
			i := suppIdx[sk]
			out = append(out, []any{sk, r.supp.name[i], r.supp.addr[i], r.supp.phone[i], v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].(int64) < out[j][0].(int64) })
	return out
}

// Q16 reference.
func (r *Reference) Q16() [][]any {
	sizes := map[int64]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}
	type pinfo struct {
		brand, typ string
		size       int64
	}
	qual := map[int64]pinfo{}
	for i := 0; i < r.part.n; i++ {
		if r.part.brand[i] == "Brand#45" ||
			strings.HasPrefix(r.part.typ[i], "MEDIUM POLISHED") ||
			!sizes[r.part.size[i]] {
			continue
		}
		qual[r.part.partkey[i]] = pinfo{r.part.brand[i], r.part.typ[i], r.part.size[i]}
	}
	complained := map[int64]bool{}
	for i := 0; i < r.supp.n; i++ {
		if matchCustomerComplaints(r.supp.cmnt[i]) {
			complained[r.supp.suppkey[i]] = true
		}
	}
	type key struct {
		brand, typ string
		size       int64
	}
	supps := map[key]map[int64]bool{}
	for i := 0; i < r.ps.n; i++ {
		info, ok := qual[r.ps.partkey[i]]
		if !ok || complained[r.ps.suppkey[i]] {
			continue
		}
		k := key(info)
		if supps[k] == nil {
			supps[k] = map[int64]bool{}
		}
		supps[k][r.ps.suppkey[i]] = true
	}
	var out [][]any
	for k, s := range supps {
		out = append(out, []any{k.brand, k.typ, k.size, int64(len(s))})
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i][3].(int64), out[j][3].(int64); a != b {
			return a > b
		}
		if a, b := out[i][0].(string), out[j][0].(string); a != b {
			return a < b
		}
		if a, b := out[i][1].(string), out[j][1].(string); a != b {
			return a < b
		}
		return out[i][2].(int64) < out[j][2].(int64)
	})
	return out
}

func matchCustomerComplaints(s string) bool {
	i := strings.Index(s, "Customer")
	if i < 0 {
		return false
	}
	return strings.Contains(s[i+len("Customer"):], "Complaints")
}

// Q17 reference.
func (r *Reference) Q17() [][]any {
	qual := map[int64]bool{}
	for i := 0; i < r.part.n; i++ {
		if r.part.brand[i] == "Brand#23" && r.part.contnr[i] == "MED BOX" {
			qual[r.part.partkey[i]] = true
		}
	}
	sum := map[int64]float64{}
	cnt := map[int64]int64{}
	for i := 0; i < r.li.n; i++ {
		if qual[r.li.partkey[i]] {
			sum[r.li.partkey[i]] += r.li.qty[i]
			cnt[r.li.partkey[i]]++
		}
	}
	var total float64
	for i := 0; i < r.li.n; i++ {
		pk := r.li.partkey[i]
		if !qual[pk] || cnt[pk] == 0 {
			continue
		}
		if r.li.qty[i] < 0.2*sum[pk]/float64(cnt[pk]) {
			total += r.li.extprice[i]
		}
	}
	return [][]any{{total / 7}}
}

// Q18 reference.
func (r *Reference) Q18() [][]any {
	qty := map[int64]float64{}
	for i := 0; i < r.li.n; i++ {
		qty[r.li.orderkey[i]] += r.li.qty[i]
	}
	custName := map[int64]string{}
	for i := 0; i < r.cust.n; i++ {
		custName[r.cust.custkey[i]] = r.cust.name[i]
	}
	var out [][]any
	for i := 0; i < r.ord.n; i++ {
		ok := r.ord.orderkey[i]
		if qty[ok] <= 300 {
			continue
		}
		out = append(out, []any{
			custName[r.ord.custkey[i]], r.ord.custkey[i], ok,
			r.ord.odate[i], r.ord.total[i], qty[ok],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i][4].(float64), out[j][4].(float64); a != b {
			return a > b
		}
		return out[i][3].(int32) < out[j][3].(int32)
	})
	if len(out) > 100 {
		out = out[:100]
	}
	return out
}

// Q19 reference.
func (r *Reference) Q19() [][]any { return r.q19(DefaultParams()) }

func (r *Reference) q19(p Params) [][]any {
	type pinfo struct {
		brand, contnr string
		size          int64
	}
	parts := map[int64]pinfo{}
	for i := 0; i < r.part.n; i++ {
		parts[r.part.partkey[i]] = pinfo{r.part.brand[i], r.part.contnr[i], r.part.size[i]}
	}
	in := func(s string, vals ...string) bool {
		for _, v := range vals {
			if s == v {
				return true
			}
		}
		return false
	}
	var total float64
	for i := 0; i < r.li.n; i++ {
		if !in(r.li.mode[i], "AIR", "AIR REG") || r.li.instruct[i] != "DELIVER IN PERSON" {
			continue
		}
		pi, ok := parts[r.li.partkey[i]]
		if !ok {
			continue
		}
		q := r.li.qty[i]
		match := pi.brand == p.Q19Brand1 && in(pi.contnr, "SM CASE", "SM BOX", "SM PACK", "SM PKG") &&
			q >= p.Q19Quantity1 && q <= p.Q19Quantity1+10 && pi.size >= 1 && pi.size <= 5 ||
			pi.brand == p.Q19Brand2 && in(pi.contnr, "MED BAG", "MED BOX", "MED PKG", "MED PACK") &&
				q >= p.Q19Quantity2 && q <= p.Q19Quantity2+10 && pi.size >= 1 && pi.size <= 10 ||
			pi.brand == p.Q19Brand3 && in(pi.contnr, "LG CASE", "LG BOX", "LG PACK", "LG PKG") &&
				q >= p.Q19Quantity3 && q <= p.Q19Quantity3+10 && pi.size >= 1 && pi.size <= 15
		if match {
			total += rev(r.li.extprice[i], r.li.disc[i])
		}
	}
	return [][]any{{total}}
}

// Q20 reference.
func (r *Reference) Q20() [][]any {
	lo, hi := date("1994-01-01"), date("1995-01-01")
	forest := map[int64]bool{}
	for i := 0; i < r.part.n; i++ {
		if strings.HasPrefix(r.part.name[i], "forest") {
			forest[r.part.partkey[i]] = true
		}
	}
	shipped := map[[2]int64]float64{}
	for i := 0; i < r.li.n; i++ {
		if r.li.ship[i] >= lo && r.li.ship[i] < hi {
			shipped[[2]int64{r.li.partkey[i], r.li.suppkey[i]}] += r.li.qty[i]
		}
	}
	qualSupp := map[int64]bool{}
	for i := 0; i < r.ps.n; i++ {
		if !forest[r.ps.partkey[i]] {
			continue
		}
		s, ok := shipped[[2]int64{r.ps.partkey[i], r.ps.suppkey[i]}]
		if !ok {
			continue
		}
		if float64(r.ps.availqty[i]) > 0.5*s {
			qualSupp[r.ps.suppkey[i]] = true
		}
	}
	var out [][]any
	for i := 0; i < r.supp.n; i++ {
		if qualSupp[r.supp.suppkey[i]] && r.nationName(r.supp.nationkey[i]) == "CANADA" {
			out = append(out, []any{r.supp.name[i], r.supp.addr[i]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].(string) < out[j][0].(string) })
	return out
}

// Q21 reference.
func (r *Reference) Q21() [][]any {
	saudi := map[int64]bool{}
	suppName := map[int64]string{}
	for i := 0; i < r.supp.n; i++ {
		suppName[r.supp.suppkey[i]] = r.supp.name[i]
		if r.nationName(r.supp.nationkey[i]) == "SAUDI ARABIA" {
			saudi[r.supp.suppkey[i]] = true
		}
	}
	failed := map[int64]bool{}
	for i := 0; i < r.ord.n; i++ {
		if r.ord.status[i] == "F" {
			failed[r.ord.orderkey[i]] = true
		}
	}
	allSupp := map[int64]map[int64]bool{}
	lateSupp := map[int64]map[int64]bool{}
	for i := 0; i < r.li.n; i++ {
		ok := r.li.orderkey[i]
		if allSupp[ok] == nil {
			allSupp[ok] = map[int64]bool{}
		}
		allSupp[ok][r.li.suppkey[i]] = true
		if r.li.receipt[i] > r.li.commit[i] {
			if lateSupp[ok] == nil {
				lateSupp[ok] = map[int64]bool{}
			}
			lateSupp[ok][r.li.suppkey[i]] = true
		}
	}
	counts := map[int64]int64{}
	for i := 0; i < r.li.n; i++ {
		ok := r.li.orderkey[i]
		sk := r.li.suppkey[i]
		if !saudi[sk] || !failed[ok] || r.li.receipt[i] <= r.li.commit[i] {
			continue
		}
		if len(allSupp[ok]) > 1 && len(lateSupp[ok]) == 1 {
			counts[sk]++
		}
	}
	var out [][]any
	for sk, n := range counts {
		out = append(out, []any{suppName[sk], n})
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i][1].(int64), out[j][1].(int64); a != b {
			return a > b
		}
		return out[i][0].(string) < out[j][0].(string)
	})
	if len(out) > 100 {
		out = out[:100]
	}
	return out
}

// Q22 reference.
func (r *Reference) Q22() [][]any {
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	var sum float64
	var n int64
	for i := 0; i < r.cust.n; i++ {
		if codes[r.cust.phone[i][:2]] && r.cust.acctbal[i] > 0 {
			sum += r.cust.acctbal[i]
			n++
		}
	}
	avg := 0.0
	if n > 0 {
		avg = sum / float64(n)
	}
	hasOrders := map[int64]bool{}
	for i := 0; i < r.ord.n; i++ {
		hasOrders[r.ord.custkey[i]] = true
	}
	numcust := map[string]int64{}
	totbal := map[string]float64{}
	for i := 0; i < r.cust.n; i++ {
		code := r.cust.phone[i][:2]
		if !codes[code] || r.cust.acctbal[i] <= avg || hasOrders[r.cust.custkey[i]] {
			continue
		}
		numcust[code]++
		totbal[code] += r.cust.acctbal[i]
	}
	keys := make([]string, 0, len(numcust))
	for k := range numcust {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]any, 0, len(keys))
	for _, k := range keys {
		out = append(out, []any{k, numcust[k], totbal[k]})
	}
	return out
}
