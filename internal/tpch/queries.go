package tpch

import (
	"fmt"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
	"wimpi/internal/plan"
)

// Query returns the physical plan for TPC-H query n (1..22), built with
// the specification's validation parameters.
func Query(n int) (plan.Node, error) {
	if n < 1 || n > len(queryBuilders) || queryBuilders[n-1] == nil {
		return nil, fmt.Errorf("tpch: no query %d", n)
	}
	return queryBuilders[n-1](), nil
}

// QueryP returns the physical plan for query n using the given
// substitution parameters. Only the eight representative queries are
// parameterized; the rest use their validation values regardless.
func QueryP(n int, p Params) (plan.Node, error) {
	switch n {
	case 1:
		return q1(p), nil
	case 3:
		return q3(p), nil
	case 4:
		return q4(p), nil
	case 5:
		return q5(p), nil
	case 6:
		return q6(p), nil
	case 13:
		return q13(p), nil
	case 14:
		return q14(p), nil
	case 19:
		return q19(p), nil
	default:
		return Query(n)
	}
}

// MustQuery is Query for known-valid numbers.
func MustQuery(n int) plan.Node {
	q, err := Query(n)
	if err != nil {
		panic(err)
	}
	return q
}

// QueryNumbers lists all implemented queries.
func QueryNumbers() []int {
	out := make([]int, 0, 22)
	for i := range queryBuilders {
		if queryBuilders[i] != nil {
			out = append(out, i+1)
		}
	}
	return out
}

// RepresentativeQueries is the eight-query subset used by the paper's
// distributed (Table III) and execution-strategy (Figure 4) experiments,
// covering the main TPC-H chokepoints.
var RepresentativeQueries = []int{1, 3, 4, 5, 6, 13, 14, 19}

var queryBuilders = [22]func() plan.Node{
	Q1, Q2, Q3, Q4, Q5, Q6, Q7, Q8, Q9, Q10, Q11,
	Q12, Q13, Q14, Q15, Q16, Q17, Q18, Q19, Q20, Q21, Q22,
}

// funcNode lets query definitions embed imperative steps (scalar
// subqueries, computed dictionary columns) inside a plan tree.
type funcNode struct {
	name string
	fn   func(ctx *plan.Context) (*colstore.Table, error)
}

// Execute implements plan.Node.
func (n *funcNode) Execute(ctx *plan.Context) (*colstore.Table, error) { return n.fn(ctx) }

// Explain implements plan.Node.
func (n *funcNode) Explain(depth int) string {
	out := ""
	for i := 0; i < depth; i++ {
		out += "  "
	}
	return out + n.name + "\n"
}

// scalarF extracts the single float value of a one-row aggregate result.
func scalarF(t *colstore.Table, col string) (float64, error) {
	c, err := t.ColByName(col)
	if err != nil {
		return 0, err
	}
	f, ok := c.(*colstore.Float64s)
	if !ok || len(f.V) != 1 {
		return 0, fmt.Errorf("tpch: %s is not a scalar float", col)
	}
	return f.V[0], nil
}

// revenue is the ubiquitous l_extendedprice * (1 - l_discount).
func revenue() exec.Expr {
	return exec.Mul(exec.Col{Name: "l_extendedprice"},
		exec.Sub(exec.ConstF{V: 1}, exec.Col{Name: "l_discount"}))
}

func date(s string) int32 { return colstore.MustDate(s) }

// q6DiscountBand returns the spec's DISCOUNT-0.01 .. DISCOUNT+0.01 band
// with a half-cent guard so exact-hundredth discounts compare robustly.
func q6DiscountBand(p Params) (lo, hi float64) {
	return p.Q6Discount - 0.01 - 0.005, p.Q6Discount + 0.01 + 0.005
}

// Q1 is the pricing summary report: a near-full scan of lineitem with a
// two-key aggregation. It is the paper's canonical memory-bandwidth-bound
// query (worst Pi 3B+ slowdown in Table II).
func Q1() plan.Node { return q1(DefaultParams()) }

func q1(p Params) plan.Node {
	return &plan.OrderBy{
		Keys: []exec.SortKey{{Column: "l_returnflag"}, {Column: "l_linestatus"}},
		Input: &plan.GroupBy{
			Input: &plan.Scan{
				Table: "lineitem",
				Columns: []string{"l_returnflag", "l_linestatus", "l_quantity",
					"l_extendedprice", "l_discount", "l_tax", "l_shipdate"},
				Pred: exec.CmpD{Column: "l_shipdate", Op: exec.Le, V: date("1998-12-01") - int32(p.Q1Delta)},
			},
			Keys: []string{"l_returnflag", "l_linestatus"},
			Aggs: []plan.AggSpec{
				{Name: "sum_qty", Func: plan.Sum, Arg: exec.Col{Name: "l_quantity"}},
				{Name: "sum_base_price", Func: plan.Sum, Arg: exec.Col{Name: "l_extendedprice"}},
				{Name: "sum_disc_price", Func: plan.Sum, Arg: revenue()},
				{Name: "sum_charge", Func: plan.Sum, Arg: exec.Mul(revenue(),
					exec.Add(exec.ConstF{V: 1}, exec.Col{Name: "l_tax"}))},
				{Name: "avg_qty", Func: plan.Avg, Arg: exec.Col{Name: "l_quantity"}},
				{Name: "avg_price", Func: plan.Avg, Arg: exec.Col{Name: "l_extendedprice"}},
				{Name: "avg_disc", Func: plan.Avg, Arg: exec.Col{Name: "l_discount"}},
				{Name: "count_order", Func: plan.Count},
			},
		},
	}
}

// Q2 is the minimum-cost supplier query: a correlated subquery
// decorrelated into a per-part minimum join.
func Q2() plan.Node {
	// European partsupp offers with supplier details.
	europeOffers := func() plan.Node {
		return &plan.HashJoin{
			Build: &plan.HashJoin{
				Build: &plan.HashJoin{
					Build:     &plan.Scan{Table: "region", Columns: []string{"r_regionkey", "r_name"}, Pred: exec.StrEq{Column: "r_name", V: "EUROPE"}},
					Probe:     &plan.Scan{Table: "nation", Columns: []string{"n_nationkey", "n_name", "n_regionkey"}},
					BuildKeys: []string{"r_regionkey"},
					ProbeKeys: []string{"n_regionkey"},
					Kind:      plan.Semi,
				},
				Probe:     &plan.Scan{Table: "supplier", Columns: []string{"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"}},
				BuildKeys: []string{"n_nationkey"},
				ProbeKeys: []string{"s_nationkey"},
				Kind:      plan.Inner,
			},
			Probe:     &plan.Scan{Table: "partsupp", Columns: []string{"ps_partkey", "ps_suppkey", "ps_supplycost"}},
			BuildKeys: []string{"s_suppkey"},
			ProbeKeys: []string{"ps_suppkey"},
			Kind:      plan.Inner,
		}
	}
	// Offers restricted to qualifying parts.
	offers := &plan.HashJoin{
		Build: &plan.Scan{
			Table:   "part",
			Columns: []string{"p_partkey", "p_mfgr"},
			Pred: exec.AndOf(
				exec.CmpI{Column: "p_size", Op: exec.Eq, V: 15},
				exec.Like{Column: "p_type", Pattern: "%BRASS"},
			),
		},
		Probe:     europeOffers(),
		BuildKeys: []string{"p_partkey"},
		ProbeKeys: []string{"ps_partkey"},
		Kind:      plan.Inner,
	}
	// The part scan above projects p_size and p_type away before the
	// join, so re-state the predicate columns in the scan.
	offers.Build.(*plan.Scan).Columns = []string{"p_partkey", "p_mfgr", "p_size", "p_type"}

	minCost := &plan.Rename{
		Input: &plan.GroupBy{
			Input: offers,
			Keys:  []string{"ps_partkey"},
			Aggs:  []plan.AggSpec{{Name: "min_cost", Func: plan.Min, Arg: exec.Col{Name: "ps_supplycost"}}},
		},
		Pairs: [][2]string{{"ps_partkey", "mc_partkey"}},
	}
	return &plan.OrderBy{
		Keys: []exec.SortKey{
			{Column: "s_acctbal", Desc: true},
			{Column: "n_name"}, {Column: "s_name"}, {Column: "p_partkey"},
		},
		N: 100,
		Input: &plan.Project{
			Input: &plan.Filter{
				Pred: exec.ColCmpF{A: "ps_supplycost", B: "min_cost", Op: exec.Eq},
				Input: &plan.HashJoin{
					Build:     minCost,
					Probe:     offers,
					BuildKeys: []string{"mc_partkey"},
					ProbeKeys: []string{"ps_partkey"},
					Kind:      plan.Inner,
				},
			},
			Cols: []plan.NamedExpr{
				{Name: "s_acctbal", Expr: exec.Col{Name: "s_acctbal"}},
				{Name: "s_name", Expr: exec.Col{Name: "s_name"}},
				{Name: "n_name", Expr: exec.Col{Name: "n_name"}},
				{Name: "p_partkey", Expr: exec.Col{Name: "p_partkey"}},
				{Name: "p_mfgr", Expr: exec.Col{Name: "p_mfgr"}},
				{Name: "s_address", Expr: exec.Col{Name: "s_address"}},
				{Name: "s_phone", Expr: exec.Col{Name: "s_phone"}},
				{Name: "s_comment", Expr: exec.Col{Name: "s_comment"}},
			},
		},
	}
}

// Q3 is the shipping-priority query: two selective joins into a top-10
// aggregation.
func Q3() plan.Node { return q3(DefaultParams()) }

func q3(p Params) plan.Node {
	d := p.Q3Date
	return &plan.OrderBy{
		Keys: []exec.SortKey{{Column: "revenue", Desc: true}, {Column: "o_orderdate"}},
		N:    10,
		Input: &plan.GroupBy{
			Input: &plan.HashJoin{
				Build: &plan.HashJoin{
					Build:     &plan.Scan{Table: "customer", Columns: []string{"c_custkey", "c_mktsegment"}, Pred: exec.StrEq{Column: "c_mktsegment", V: p.Q3Segment}},
					Probe:     &plan.Scan{Table: "orders", Columns: []string{"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"}, Pred: exec.CmpD{Column: "o_orderdate", Op: exec.Lt, V: d}},
					BuildKeys: []string{"c_custkey"},
					ProbeKeys: []string{"o_custkey"},
					Kind:      plan.Semi,
				},
				Probe:     &plan.Scan{Table: "lineitem", Columns: []string{"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"}, Pred: exec.CmpD{Column: "l_shipdate", Op: exec.Gt, V: d}},
				BuildKeys: []string{"o_orderkey"},
				ProbeKeys: []string{"l_orderkey"},
				Kind:      plan.Inner,
			},
			Keys: []string{"l_orderkey", "o_orderdate", "o_shippriority"},
			Aggs: []plan.AggSpec{{Name: "revenue", Func: plan.Sum, Arg: revenue()}},
		},
	}
}

// Q4 is the order-priority check: a date-windowed semi-join counted by
// priority.
func Q4() plan.Node { return q4(DefaultParams()) }

func q4(p Params) plan.Node {
	return &plan.OrderBy{
		Keys: []exec.SortKey{{Column: "o_orderpriority"}},
		Input: &plan.GroupBy{
			Input: &plan.HashJoin{
				Build: &plan.Scan{
					Table:   "lineitem",
					Columns: []string{"l_orderkey", "l_commitdate", "l_receiptdate"},
					Pred:    exec.ColCmpD{A: "l_commitdate", B: "l_receiptdate", Op: exec.Lt},
				},
				Probe: &plan.Scan{
					Table:   "orders",
					Columns: []string{"o_orderkey", "o_orderdate", "o_orderpriority"},
					Pred:    exec.DateRange{Column: "o_orderdate", Lo: p.Q4Date, Hi: colstore.AddMonths(p.Q4Date, 3)},
				},
				BuildKeys: []string{"l_orderkey"},
				ProbeKeys: []string{"o_orderkey"},
				Kind:      plan.Semi,
			},
			Keys: []string{"o_orderpriority"},
			Aggs: []plan.AggSpec{{Name: "order_count", Func: plan.Count}},
		},
	}
}

// Q5 is the local-supplier-volume query: a five-way join with the
// customer-nation = supplier-nation correlation.
func Q5() plan.Node { return q5(DefaultParams()) }

func q5(p Params) plan.Node {
	custInAsia := &plan.HashJoin{
		Build: &plan.HashJoin{
			Build:     &plan.Scan{Table: "region", Columns: []string{"r_regionkey", "r_name"}, Pred: exec.StrEq{Column: "r_name", V: p.Q5Region}},
			Probe:     &plan.Scan{Table: "nation", Columns: []string{"n_nationkey", "n_name", "n_regionkey"}},
			BuildKeys: []string{"r_regionkey"},
			ProbeKeys: []string{"n_regionkey"},
			Kind:      plan.Semi,
		},
		Probe:     &plan.Scan{Table: "customer", Columns: []string{"c_custkey", "c_nationkey"}},
		BuildKeys: []string{"n_nationkey"},
		ProbeKeys: []string{"c_nationkey"},
		Kind:      plan.Inner,
	}
	ordersOfCust := &plan.HashJoin{
		Build:     custInAsia,
		Probe:     &plan.Scan{Table: "orders", Columns: []string{"o_orderkey", "o_custkey", "o_orderdate"}, Pred: exec.DateRange{Column: "o_orderdate", Lo: p.Q5Date, Hi: colstore.AddYears(p.Q5Date, 1)}},
		BuildKeys: []string{"c_custkey"},
		ProbeKeys: []string{"o_custkey"},
		Kind:      plan.Inner,
	}
	lines := &plan.HashJoin{
		Build:     ordersOfCust,
		Probe:     &plan.Scan{Table: "lineitem", Columns: []string{"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"}},
		BuildKeys: []string{"o_orderkey"},
		ProbeKeys: []string{"l_orderkey"},
		Kind:      plan.Inner,
	}
	withSupp := &plan.Filter{
		Pred: exec.ColCmpI{A: "s_nationkey", B: "c_nationkey", Op: exec.Eq},
		Input: &plan.HashJoin{
			Build:     &plan.Scan{Table: "supplier", Columns: []string{"s_suppkey", "s_nationkey"}},
			Probe:     lines,
			BuildKeys: []string{"s_suppkey"},
			ProbeKeys: []string{"l_suppkey"},
			Kind:      plan.Inner,
		},
	}
	return &plan.OrderBy{
		Keys: []exec.SortKey{{Column: "revenue", Desc: true}},
		Input: &plan.GroupBy{
			Input: withSupp,
			Keys:  []string{"n_name"},
			Aggs:  []plan.AggSpec{{Name: "revenue", Func: plan.Sum, Arg: revenue()}},
		},
	}
}

// Q6 is the forecasting-revenue-change query: a pure scan-filter-sum, the
// paper's canonical selective CPU-friendly query (best Pi 3B+ energy
// result).
func Q6() plan.Node { return q6(DefaultParams()) }

func q6(p Params) plan.Node {
	lo, hi := q6DiscountBand(p)
	return &plan.GroupBy{
		Input: &plan.Scan{
			Table:   "lineitem",
			Columns: []string{"l_extendedprice", "l_discount", "l_shipdate", "l_quantity"},
			Pred: exec.AndOf(
				exec.DateRange{Column: "l_shipdate", Lo: p.Q6Date, Hi: colstore.AddYears(p.Q6Date, 1)},
				exec.FloatRange{Column: "l_discount", Lo: lo, Hi: hi},
				exec.CmpF{Column: "l_quantity", Op: exec.Lt, V: p.Q6Quantity},
			),
		},
		Aggs: []plan.AggSpec{{Name: "revenue", Func: plan.Sum,
			Arg: exec.Mul(exec.Col{Name: "l_extendedprice"}, exec.Col{Name: "l_discount"})}},
	}
}
