package tpch

import (
	"fmt"

	"wimpi/internal/colstore"
	"wimpi/internal/engine"
	"wimpi/internal/exec"
	"wimpi/internal/plan"
)

// DistQuery is the distributed form of one representative query under
// the paper's cluster layout (lineitem partitioned on l_orderkey, all
// other tables replicated): a partial plan every node runs on its
// partition, plus a merge plan the coordinator runs over the
// concatenated partials. The merged result is identical to running the
// single-node query over the whole dataset.
type DistQuery struct {
	// Num is the TPC-H query number.
	Num int
	// SingleNode marks queries that touch no partitioned table and
	// therefore run on one node only (Q13 — the flat line of Table III).
	SingleNode bool
	// Partial builds the per-node plan.
	Partial func() plan.Node
	// Merge builds the coordinator plan over the concatenated partials.
	Merge func(parts *colstore.Table) plan.Node
}

// DistQueryFor returns the distributed form of query n. Only the eight
// representative queries (RepresentativeQueries) are supported.
func DistQueryFor(n int) (*DistQuery, error) {
	if d, ok := distQueries[n]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("tpch: query %d has no distributed form", n)
}

// MergePartials concatenates per-node partial results and runs the merge
// plan over them, returning the final table and the merge work profile.
func (dq *DistQuery) MergePartials(parts []*colstore.Table, workers int) (*colstore.Table, exec.Counters, error) {
	if dq.SingleNode {
		if len(parts) != 1 {
			return nil, exec.Counters{}, fmt.Errorf("tpch: Q%d is single-node but got %d partials", dq.Num, len(parts))
		}
		return parts[0], exec.Counters{}, nil
	}
	all, err := colstore.Concat(parts...)
	if err != nil {
		return nil, exec.Counters{}, fmt.Errorf("tpch: Q%d merge: %w", dq.Num, err)
	}
	db := engine.NewDB(engine.Config{Workers: workers})
	out, ctr, err := plan.Run(db, workers, dq.Merge(all))
	if err != nil {
		return nil, exec.Counters{}, fmt.Errorf("tpch: Q%d merge: %w", dq.Num, err)
	}
	return out, ctr, nil
}

var distQueries = map[int]*DistQuery{
	1: {
		Num: 1,
		Partial: func() plan.Node {
			return &plan.GroupBy{
				Input: &plan.Scan{
					Table: "lineitem",
					Columns: []string{"l_returnflag", "l_linestatus", "l_quantity",
						"l_extendedprice", "l_discount", "l_tax", "l_shipdate"},
					Pred: exec.CmpD{Column: "l_shipdate", Op: exec.Le, V: date("1998-09-02")},
				},
				Keys: []string{"l_returnflag", "l_linestatus"},
				Aggs: []plan.AggSpec{
					{Name: "sum_qty", Func: plan.Sum, Arg: exec.Col{Name: "l_quantity"}},
					{Name: "sum_base_price", Func: plan.Sum, Arg: exec.Col{Name: "l_extendedprice"}},
					{Name: "sum_disc_price", Func: plan.Sum, Arg: revenue()},
					{Name: "sum_charge", Func: plan.Sum, Arg: exec.Mul(revenue(),
						exec.Add(exec.ConstF{V: 1}, exec.Col{Name: "l_tax"}))},
					{Name: "sum_disc", Func: plan.Sum, Arg: exec.Col{Name: "l_discount"}},
					{Name: "count_order", Func: plan.Count},
				},
			}
		},
		Merge: func(parts *colstore.Table) plan.Node {
			regroup := &plan.GroupBy{
				Input: tableNode{parts},
				Keys:  []string{"l_returnflag", "l_linestatus"},
				Aggs: []plan.AggSpec{
					{Name: "sum_qty", Func: plan.Sum, Arg: exec.Col{Name: "sum_qty"}},
					{Name: "sum_base_price", Func: plan.Sum, Arg: exec.Col{Name: "sum_base_price"}},
					{Name: "sum_disc_price", Func: plan.Sum, Arg: exec.Col{Name: "sum_disc_price"}},
					{Name: "sum_charge", Func: plan.Sum, Arg: exec.Col{Name: "sum_charge"}},
					{Name: "sum_disc", Func: plan.Sum, Arg: exec.Col{Name: "sum_disc"}},
					{Name: "count_order", Func: plan.SumI, Arg: exec.Col{Name: "count_order"}},
				},
			}
			return &plan.OrderBy{
				Keys: []exec.SortKey{{Column: "l_returnflag"}, {Column: "l_linestatus"}},
				Input: &plan.Project{
					Input: regroup,
					Cols: []plan.NamedExpr{
						{Name: "l_returnflag", Expr: exec.Col{Name: "l_returnflag"}},
						{Name: "l_linestatus", Expr: exec.Col{Name: "l_linestatus"}},
						{Name: "sum_qty", Expr: exec.Col{Name: "sum_qty"}},
						{Name: "sum_base_price", Expr: exec.Col{Name: "sum_base_price"}},
						{Name: "sum_disc_price", Expr: exec.Col{Name: "sum_disc_price"}},
						{Name: "sum_charge", Expr: exec.Col{Name: "sum_charge"}},
						{Name: "avg_qty", Expr: exec.Div(exec.Col{Name: "sum_qty"}, exec.Col{Name: "count_order"})},
						{Name: "avg_price", Expr: exec.Div(exec.Col{Name: "sum_base_price"}, exec.Col{Name: "count_order"})},
						{Name: "avg_disc", Expr: exec.Div(exec.Col{Name: "sum_disc"}, exec.Col{Name: "count_order"})},
						{Name: "count_order", Expr: exec.Col{Name: "count_order"}},
					},
				},
			}
		},
	},
	3: {
		Num: 3,
		// Lineitem is partitioned on l_orderkey, so every Q3 group lives
		// on exactly one node: partials are locally final and the merge
		// is a global top-10.
		Partial: func() plan.Node { return Q3() },
		Merge: func(parts *colstore.Table) plan.Node {
			return &plan.OrderBy{
				Keys:  []exec.SortKey{{Column: "revenue", Desc: true}, {Column: "o_orderdate"}},
				N:     10,
				Input: tableNode{parts},
			}
		},
	},
	4: {
		Num: 4,
		// Orders are replicated but an order's lines all live on one
		// node, so each node counts only orders whose late lines are
		// local; per-priority counts add up across nodes.
		Partial: func() plan.Node {
			return &plan.GroupBy{
				Input: &plan.HashJoin{
					Build: &plan.Scan{
						Table:   "lineitem",
						Columns: []string{"l_orderkey", "l_commitdate", "l_receiptdate"},
						Pred:    exec.ColCmpD{A: "l_commitdate", B: "l_receiptdate", Op: exec.Lt},
					},
					Probe: &plan.Scan{
						Table:   "orders",
						Columns: []string{"o_orderkey", "o_orderdate", "o_orderpriority"},
						Pred:    exec.DateRange{Column: "o_orderdate", Lo: date("1993-07-01"), Hi: date("1993-10-01")},
					},
					BuildKeys: []string{"l_orderkey"},
					ProbeKeys: []string{"o_orderkey"},
					Kind:      plan.Semi,
				},
				Keys: []string{"o_orderpriority"},
				Aggs: []plan.AggSpec{{Name: "order_count", Func: plan.Count}},
			}
		},
		Merge: func(parts *colstore.Table) plan.Node {
			return &plan.OrderBy{
				Keys: []exec.SortKey{{Column: "o_orderpriority"}},
				Input: &plan.GroupBy{
					Input: tableNode{parts},
					Keys:  []string{"o_orderpriority"},
					Aggs:  []plan.AggSpec{{Name: "order_count", Func: plan.SumI, Arg: exec.Col{Name: "order_count"}}},
				},
			}
		},
	},
	5: {
		Num: 5,
		Partial: func() plan.Node {
			// Q5 without the final sort: per-nation partial revenue.
			full := Q5().(*plan.OrderBy)
			return full.Input
		},
		Merge: func(parts *colstore.Table) plan.Node {
			return &plan.OrderBy{
				Keys: []exec.SortKey{{Column: "revenue", Desc: true}},
				Input: &plan.GroupBy{
					Input: tableNode{parts},
					Keys:  []string{"n_name"},
					Aggs:  []plan.AggSpec{{Name: "revenue", Func: plan.Sum, Arg: exec.Col{Name: "revenue"}}},
				},
			}
		},
	},
	6: {
		Num:     6,
		Partial: func() plan.Node { return Q6() },
		Merge: func(parts *colstore.Table) plan.Node {
			return &plan.GroupBy{
				Input: tableNode{parts},
				Aggs:  []plan.AggSpec{{Name: "revenue", Func: plan.Sum, Arg: exec.Col{Name: "revenue"}}},
			}
		},
	},
	13: {
		Num:        13,
		SingleNode: true,
		Partial:    func() plan.Node { return Q13() },
		Merge:      nil,
	},
	14: {
		Num: 14,
		Partial: func() plan.Node {
			// Partial promo/total sums; the ratio is computed at merge.
			full := Q14().(*plan.Project)
			return full.Input
		},
		Merge: func(parts *colstore.Table) plan.Node {
			return &plan.Project{
				Input: &plan.GroupBy{
					Input: tableNode{parts},
					Aggs: []plan.AggSpec{
						{Name: "promo", Func: plan.Sum, Arg: exec.Col{Name: "promo"}},
						{Name: "total", Func: plan.Sum, Arg: exec.Col{Name: "total"}},
					},
				},
				Cols: []plan.NamedExpr{
					{Name: "promo_revenue", Expr: exec.Div(
						exec.Mul(exec.ConstF{V: 100}, exec.Col{Name: "promo"}),
						exec.Col{Name: "total"})},
				},
			}
		},
	},
	19: {
		Num:     19,
		Partial: func() plan.Node { return Q19() },
		Merge: func(parts *colstore.Table) plan.Node {
			return &plan.GroupBy{
				Input: tableNode{parts},
				Aggs:  []plan.AggSpec{{Name: "revenue", Func: plan.Sum, Arg: exec.Col{Name: "revenue"}}},
			}
		},
	},
}
