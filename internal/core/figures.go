package core

import (
	"fmt"
	"strings"

	"wimpi/internal/hardware"
	"wimpi/internal/microbench"
	"wimpi/internal/strategies"
)

// Figure2Result holds the regenerated microbenchmark figures (2a-2d):
// projected scores per benchmark, comparison point, and core
// configuration.
type Figure2Result struct {
	// SingleCore and AllCores map benchmark name -> profile -> score.
	SingleCore map[string]map[string]float64
	AllCores   map[string]map[string]float64
	// Units maps benchmark name -> score unit.
	Units map[string]string
	// Host holds the host machine's real single-core kernel runs, as a
	// sanity anchor for the implementation.
	Host []microbench.Result
}

// Figure2Benchmarks lists the four microbenchmarks in figure order.
var Figure2Benchmarks = []string{"whetstone", "dhrystone", "sysbench-cpu", "membw"}

// Figure2 projects the four microbenchmarks for every comparison point
// and runs the real kernels once on the host.
func (h *Harness) Figure2() *Figure2Result {
	res := &Figure2Result{
		SingleCore: map[string]map[string]float64{},
		AllCores:   map[string]map[string]float64{},
		Units:      map[string]string{},
	}
	project := func(p *hardware.Profile, cores int) []microbench.Result {
		return []microbench.Result{
			microbench.ProjectWhetstone(p, cores),
			microbench.ProjectDhrystone(p, cores),
			microbench.ProjectSysbenchCPU(p, cores),
			microbench.ProjectMemBW(p, cores),
		}
	}
	for i := range h.profiles {
		p := &h.profiles[i]
		for _, r := range project(p, 1) {
			if res.SingleCore[r.Name] == nil {
				res.SingleCore[r.Name] = map[string]float64{}
				res.AllCores[r.Name] = map[string]float64{}
			}
			res.SingleCore[r.Name][p.Name] = r.Score
			res.Units[r.Name] = r.Unit
		}
		for _, r := range project(p, 0) {
			res.AllCores[r.Name][p.Name] = r.Score
		}
	}
	res.Host = []microbench.Result{
		microbench.RunWhetstone(200_000),
		microbench.RunDhrystone(2_000_000),
		microbench.RunSysbenchCPU(20_000),
		microbench.RunMemBW(8 << 20),
	}
	return res
}

// Render formats Figures 2a-2d.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2: microbenchmark projections (single core / all cores)\n")
	for _, bench := range Figure2Benchmarks {
		fmt.Fprintf(&b, "\n  %s (%s)\n", bench, r.Units[bench])
		for _, name := range PaperProfiles {
			fmt.Fprintf(&b, "    %-12s %12.2f / %-12.2f\n",
				name, r.SingleCore[bench][name], r.AllCores[bench][name])
		}
	}
	b.WriteString("\n  host kernels (measured on this machine, single core):\n")
	for _, hr := range r.Host {
		fmt.Fprintf(&b, "    %-12s %12.2f %s\n", hr.Name, hr.Score, hr.Unit)
	}
	return b.String()
}

// Figure3Result holds the regenerated speedup figure: each comparison
// point's speedup over the Pi configuration (single Pi at SF 1, the
// largest WimPi cluster at the distributed scale).
type Figure3Result struct {
	// SF1 maps query -> server -> t_pi / t_server.
	SF1 map[int]map[string]float64
	// SF10 maps query -> server -> t_wimpi(max nodes) / t_server.
	SF10 map[int]map[string]float64
	// Nodes is the cluster size used for the distributed speedups.
	Nodes int
}

// Figure3 derives the speedup figure from Table II and Table III
// results.
func (h *Harness) Figure3(t2 *TableIIResult, t3 *TableIIIResult) *Figure3Result {
	res := &Figure3Result{
		SF1:  map[int]map[string]float64{},
		SF10: map[int]map[string]float64{},
	}
	for q, row := range t2.Seconds {
		res.SF1[q] = map[string]float64{}
		for name, s := range row {
			if name == "Pi 3B+" || s <= 0 {
				continue
			}
			res.SF1[q][name] = row["Pi 3B+"] / s
		}
	}
	maxNodes := 0
	for _, sizes := range t3.WimPi {
		for n := range sizes {
			if n > maxNodes {
				maxNodes = n
			}
		}
	}
	res.Nodes = maxNodes
	for _, q := range t3.Queries {
		res.SF10[q] = map[string]float64{}
		wim := t3.WimPi[q][maxNodes]
		for name, s := range t3.Servers[q] {
			if s > 0 {
				res.SF10[q][name] = wim / s
			}
		}
	}
	return res
}

// Render formats Figure 3.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: server speedup over the Pi configuration (values < 1 mean the Pi side wins)\n")
	b.WriteString("\n  SF1 (vs single Pi 3B+):\n")
	renderSpeedups(&b, r.SF1)
	fmt.Fprintf(&b, "\n  Distributed (vs %d-node WimPi):\n", r.Nodes)
	renderSpeedups(&b, r.SF10)
	return b.String()
}

func renderSpeedups(b *strings.Builder, m map[int]map[string]float64) {
	queries := sortedKeys(m)
	fmt.Fprintf(b, "    %-12s", "")
	for _, q := range queries {
		fmt.Fprintf(b, "%8s", fmt.Sprintf("Q%d", q))
	}
	b.WriteString("\n")
	for _, name := range PaperProfiles {
		if name == "Pi 3B+" {
			continue
		}
		if _, ok := m[queries[0]][name]; !ok {
			continue
		}
		fmt.Fprintf(b, "    %-12s", name)
		for _, q := range queries {
			fmt.Fprintf(b, "%8.2f", m[q][name])
		}
		b.WriteString("\n")
	}
}

// Figure4Result holds the regenerated execution-strategy comparison:
// simulated single-threaded runtimes per query, strategy and machine.
type Figure4Result struct {
	// Seconds maps query -> strategy -> machine -> simulated seconds.
	Seconds map[int]map[strategies.Strategy]map[string]float64
	// Machines lists the compared machines (op-e5, op-gold, Pi 3B+).
	Machines []string
}

// Figure4 executes the three strategies for the eight representative
// queries and simulates the paper's three Figure 4 machines. The
// strategy binaries are hand-coded, so the engine's per-query overhead
// does not apply.
func (h *Harness) Figure4() (*Figure4Result, error) {
	data, _ := h.sfDatabase()
	machines := []string{"op-e5", "op-gold", "Pi 3B+"}
	res := &Figure4Result{
		Seconds:  map[int]map[strategies.Strategy]map[string]float64{},
		Machines: machines,
	}
	profs := make([]hardware.Profile, len(machines))
	for i, m := range machines {
		p := h.profile(m)
		if p == nil {
			return nil, fmt.Errorf("core: no profile %s", m)
		}
		profs[i] = *p
		profs[i].QueryOverheadSec = 0
	}
	for _, q := range strategies.Queries {
		res.Seconds[q] = map[strategies.Strategy]map[string]float64{}
		for _, s := range strategies.Strategies {
			_, ctr, err := strategies.Execute(s, q, data)
			if err != nil {
				return nil, fmt.Errorf("core: figure 4 Q%d %s: %w", q, s, err)
			}
			res.Seconds[q][s] = map[string]float64{}
			for i := range profs {
				res.Seconds[q][s][machines[i]] = h.Model.Explain(&profs[i], ctr, 1).Total
			}
		}
	}
	return res, nil
}

// Render formats Figure 4.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: execution strategies, single-threaded simulated seconds\n")
	for _, m := range r.Machines {
		fmt.Fprintf(&b, "\n  %s\n    %-14s", m, "")
		queries := sortedKeys(r.Seconds)
		for _, q := range queries {
			fmt.Fprintf(&b, "%9s", fmt.Sprintf("Q%d", q))
		}
		b.WriteString("\n")
		for _, s := range strategies.Strategies {
			fmt.Fprintf(&b, "    %-14s", s)
			for _, q := range queries {
				fmt.Fprintf(&b, "%9.4f", r.Seconds[q][s][m])
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
