// Package core is the paper's primary contribution as a library: the
// experimental-study harness. It regenerates every table and figure of
// the evaluation — hardware specs (Table I), microbenchmarks (Figure 2),
// single-node TPC-H (Table II), distributed WimPi TPC-H (Table III),
// speedups (Figure 3), execution strategies (Figure 4), and the
// cost/energy normalizations (Figures 5-7) — and renders each next to
// the values published in the paper.
package core

// PaperProfiles lists the comparison points in Table I/II column order.
var PaperProfiles = []string{
	"op-e5", "op-gold", "c4.8xlarge", "m4.10xlarge", "m4.16xlarge",
	"z1d.metal", "m5.metal", "a1.metal", "c6g.metal", "Pi 3B+",
}

// PaperTableII holds the paper's Table II: absolute runtimes in seconds
// for TPC-H SF 1, per query and comparison point. Two cells (marked in
// the paper extraction as ambiguous) are interpolated from their row
// neighbours: Q11/m4.16xlarge and Q4-SF10/m4.16xlarge.
var PaperTableII = map[int]map[string]float64{
	1:  row(0.161, 0.056, 0.054, 0.056, 0.043, 0.073, 0.034, 0.270, 0.049, 1.772),
	2:  row(0.008, 0.008, 0.008, 0.007, 0.007, 0.012, 0.010, 0.009, 0.005, 0.044),
	3:  row(0.080, 0.046, 0.021, 0.021, 0.023, 0.079, 0.033, 0.062, 0.045, 0.227),
	4:  row(0.061, 0.025, 0.016, 0.017, 0.015, 0.052, 0.023, 0.064, 0.026, 0.222),
	5:  row(0.082, 0.041, 0.020, 0.021, 0.021, 0.057, 0.026, 0.087, 0.047, 0.283),
	6:  row(0.028, 0.012, 0.006, 0.007, 0.006, 0.027, 0.008, 0.025, 0.011, 0.099),
	7:  row(0.052, 0.024, 0.022, 0.021, 0.023, 0.035, 0.025, 0.071, 0.038, 0.486),
	8:  row(0.116, 0.069, 0.037, 0.041, 0.043, 0.096, 0.053, 0.126, 0.079, 0.244),
	9:  row(0.116, 0.055, 0.033, 0.034, 0.032, 0.083, 0.043, 0.123, 0.057, 0.684),
	10: row(0.062, 0.031, 0.017, 0.019, 0.022, 0.054, 0.031, 0.053, 0.052, 0.221),
	11: row(0.017, 0.011, 0.006, 0.006, 0.006, 0.024, 0.010, 0.018, 0.011, 0.034),
	12: row(0.036, 0.020, 0.011, 0.013, 0.014, 0.032, 0.018, 0.046, 0.032, 0.154),
	13: row(0.196, 0.121, 0.097, 0.111, 0.116, 0.196, 0.135, 0.330, 0.204, 1.771),
	14: row(0.019, 0.011, 0.006, 0.007, 0.009, 0.018, 0.011, 0.015, 0.020, 0.076),
	15: row(0.034, 0.015, 0.011, 0.012, 0.012, 0.031, 0.017, 0.026, 0.018, 0.093),
	16: row(0.156, 0.084, 0.045, 0.048, 0.045, 0.167, 0.074, 0.190, 0.117, 0.302),
	17: row(0.101, 0.051, 0.022, 0.022, 0.016, 0.089, 0.027, 0.077, 0.040, 0.220),
	18: row(0.130, 0.063, 0.050, 0.057, 0.059, 0.084, 0.064, 0.135, 0.083, 0.394),
	19: row(0.027, 0.020, 0.018, 0.021, 0.029, 0.037, 0.031, 0.024, 0.017, 0.140),
	20: row(0.045, 0.022, 0.016, 0.018, 0.020, 0.047, 0.024, 0.032, 0.022, 0.141),
	21: row(0.155, 0.199, 0.068, 0.087, 0.237, 0.169, 0.248, 0.085, 0.620, 0.603),
	22: row(0.112, 0.063, 0.038, 0.044, 0.043, 0.094, 0.064, 0.143, 0.081, 0.269),
}

func row(vals ...float64) map[string]float64 {
	m := make(map[string]float64, len(vals))
	for i, v := range vals {
		m[PaperProfiles[i]] = v
	}
	return m
}

// PaperClusterSizes are the WimPi configurations of Table III.
var PaperClusterSizes = []int{4, 8, 12, 16, 20, 24}

// PaperTableIIIServers holds the paper's Table III server rows: absolute
// runtimes in seconds for TPC-H SF 10 on the nine server comparison
// points, for the eight representative queries.
var PaperTableIIIServers = map[int]map[string]float64{
	1:  srow(1.474, 0.482, 0.554, 0.566, 0.388, 0.600, 0.306, 2.972, 0.452),
	3:  srow(0.603, 0.341, 0.183, 0.201, 0.203, 0.364, 0.189, 0.692, 0.372),
	4:  srow(0.465, 0.212, 0.144, 0.154, 0.150, 0.225, 0.117, 0.620, 0.258),
	5:  srow(0.542, 0.278, 0.161, 0.167, 0.140, 0.300, 0.135, 0.925, 0.290),
	6:  srow(0.191, 0.086, 0.054, 0.054, 0.041, 0.105, 0.038, 0.219, 0.078),
	13: srow(2.405, 1.817, 1.897, 1.963, 1.644, 1.787, 1.351, 6.651, 3.505),
	14: srow(0.153, 0.055, 0.047, 0.045, 0.051, 0.082, 0.047, 0.132, 0.059),
	19: srow(0.131, 0.072, 0.063, 0.063, 0.065, 0.092, 0.065, 0.173, 0.077),
}

func srow(vals ...float64) map[string]float64 {
	m := make(map[string]float64, len(vals))
	for i, v := range vals {
		m[PaperProfiles[i]] = v
	}
	return m
}

// PaperTableIIIWimPi holds the paper's Table III WimPi rows: absolute
// runtimes in seconds at each cluster size, per query.
var PaperTableIIIWimPi = map[int]map[int]float64{
	1:  {4: 57.814, 8: 2.319, 12: 1.561, 16: 1.242, 20: 0.705, 24: 0.678},
	3:  {4: 53.424, 8: 5.920, 12: 0.813, 16: 0.761, 20: 0.562, 24: 0.538},
	4:  {4: 9.492, 8: 0.928, 12: 0.636, 16: 0.506, 20: 0.348, 24: 0.342},
	5:  {4: 47.147, 8: 12.165, 12: 1.999, 16: 1.730, 20: 1.143, 24: 0.868},
	6:  {4: 0.303, 8: 0.238, 12: 0.134, 16: 0.138, 20: 0.094, 24: 0.108},
	13: {4: 103.604, 8: 103.604, 12: 103.604, 16: 103.604, 20: 103.604, 24: 103.604},
	14: {4: 0.280, 8: 0.167, 12: 0.108, 16: 0.103, 20: 0.085, 24: 0.104},
	19: {4: 0.624, 8: 0.423, 12: 0.351, 16: 0.325, 20: 0.270, 24: 0.220},
}

// PaperClaims collects the paper's headline qualitative findings, which
// the harness checks against measured output (EXPERIMENTS.md records the
// outcome of each).
var PaperClaims = []string{
	"Fig 2a/2b: Pi single-core FP within 2-3x of op-e5, 5-6x of op-gold/m5.metal; z1d.metal best single-core",
	"Fig 2c: Pi single-core sysbench ~equal to op-e5; servers 1.2-3.9x better",
	"Fig 2d: Pi 1-core bandwidth 5-11x below servers; all-core 20-99x; 24 nodes ~ op-e5",
	"Table II: Pi on average ~10x slower at SF 1; worst on scan-bound Q1; best on CPU-bound Q11/Q16",
	"Table III: 4-node thrash cliff, 10-100x jump once partitions fit; Q13 flat (single node)",
	"Fig 4: access-aware best, data-centric worst, gaps less pronounced on the Pi",
	"Fig 5: single Pi 6-64x better MSRP-normalized; Q13 always loses; Q6/Q14/Q19 degrade with more nodes",
	"Fig 6: Pi beats all cloud servers on hourly cost for every query (up to 10,000x / 1,200x)",
	"Fig 7: Pi 2-22x better energy at SF 1 (median ~10x); best on selective queries (Q6), not scans (Q1)",
}
