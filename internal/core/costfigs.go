package core

import (
	"fmt"
	"strings"
	"time"

	"wimpi/internal/costmodel"
	"wimpi/internal/hardware"
)

// NormalizedResult holds one of the cost/energy figures (5, 6, 7): the
// Pi configuration's normalized improvement over each applicable server,
// per query — and per cluster size for the distributed half.
type NormalizedResult struct {
	// Name identifies the figure ("MSRP", "Hourly", "Energy").
	Name string
	// SF1 maps query -> server -> improvement of a single Pi.
	SF1 map[int]map[string]float64
	// Dist maps query -> cluster size -> server -> improvement of WimPi.
	Dist map[int]map[int]map[string]float64
}

type normMetric func(piTime time.Duration, piNodes int, serverTime time.Duration, server *hardware.Profile) (float64, error)

func (h *Harness) normalized(name string, t2 *TableIIResult, t3 *TableIIIResult, servers []hardware.Profile, metric normMetric) (*NormalizedResult, error) {
	res := &NormalizedResult{
		Name: name,
		SF1:  map[int]map[string]float64{},
		Dist: map[int]map[int]map[string]float64{},
	}
	for q, row := range t2.Seconds {
		pi := secs(row["Pi 3B+"])
		res.SF1[q] = map[string]float64{}
		for i := range servers {
			s := &servers[i]
			v, err := metric(pi, 1, secs(row[s.Name]), s)
			if err != nil {
				return nil, fmt.Errorf("core: %s figure Q%d %s: %w", name, q, s.Name, err)
			}
			res.SF1[q][s.Name] = v
		}
	}
	for _, q := range t3.Queries {
		res.Dist[q] = map[int]map[string]float64{}
		for n, wim := range t3.WimPi[q] {
			res.Dist[q][n] = map[string]float64{}
			for i := range servers {
				s := &servers[i]
				v, err := metric(secs(wim), n, secs(t3.Servers[q][s.Name]), s)
				if err != nil {
					return nil, fmt.Errorf("core: %s figure Q%d %s: %w", name, q, s.Name, err)
				}
				res.Dist[q][n][s.Name] = v
			}
		}
	}
	return res, nil
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// Figure5 regenerates the MSRP-normalized comparison (On-Premises
// servers only — the Cloud SKUs have no public MSRP).
func (h *Harness) Figure5(t2 *TableIIResult, t3 *TableIIIResult) (*NormalizedResult, error) {
	return h.normalized("MSRP", t2, t3, hardware.OnPrem(), costmodel.MSRPImprovement)
}

// Figure6 regenerates the hourly-cost-normalized comparison (Cloud
// servers).
func (h *Harness) Figure6(t2 *TableIIResult, t3 *TableIIIResult) (*NormalizedResult, error) {
	return h.normalized("Hourly", t2, t3, hardware.CloudProfiles(), costmodel.HourlyImprovement)
}

// Figure7 regenerates the TDP-energy-normalized comparison (On-Premises
// servers).
func (h *Harness) Figure7(t2 *TableIIResult, t3 *TableIIIResult) (*NormalizedResult, error) {
	return h.normalized("Energy", t2, t3, hardware.OnPrem(), costmodel.EnergyImprovement)
}

// Render formats a normalized figure. Values above 1.0 favor the
// Pi/WimPi configuration (the paper's dotted break-even line).
func (r *NormalizedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure (%s-normalized): improvement of the Pi configuration (>1 favors Pi)\n", r.Name)
	b.WriteString("\n  SF1 (single Pi 3B+):\n")
	queries := sortedKeys(r.SF1)
	servers := serverNames(r.SF1[queries[0]])
	fmt.Fprintf(&b, "    %-12s", "")
	for _, q := range queries {
		fmt.Fprintf(&b, "%9s", fmt.Sprintf("Q%d", q))
	}
	b.WriteString("\n")
	for _, s := range servers {
		fmt.Fprintf(&b, "    %-12s", s)
		for _, q := range queries {
			fmt.Fprintf(&b, "%9.1f", r.SF1[q][s])
		}
		b.WriteString("\n")
	}
	b.WriteString("\n  Distributed (WimPi, by cluster size):\n")
	dqueries := sortedKeys(r.Dist)
	for _, q := range dqueries {
		fmt.Fprintf(&b, "    Q%-3d", q)
		sizes := sortedKeys(r.Dist[q])
		for _, n := range sizes {
			// Summarize across servers with the geometric feel of the
			// figure: show the range.
			lo, hi := rangeOf(r.Dist[q][n])
			fmt.Fprintf(&b, "  x%-2d %6.1f-%-6.1f", n, lo, hi)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func serverNames(m map[string]float64) []string {
	var out []string
	for _, name := range PaperProfiles {
		if _, ok := m[name]; ok {
			out = append(out, name)
		}
	}
	return out
}

func rangeOf(m map[string]float64) (lo, hi float64) {
	first := true
	for _, v := range m {
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	return lo, hi
}
