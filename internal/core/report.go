package core

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"wimpi/internal/strategies"
)

// Study bundles every regenerated artifact of the paper.
type Study struct {
	// Options echoes the configuration.
	Options Options
	// TableII and TableIII are the TPC-H results.
	TableII  *TableIIResult
	TableIII *TableIIIResult
	// Figure2..Figure7 are the figure results.
	Figure2 *Figure2Result
	Figure3 *Figure3Result
	Figure4 *Figure4Result
	Figure5 *NormalizedResult
	Figure6 *NormalizedResult
	Figure7 *NormalizedResult
	// Claims records the verification of the paper's headline findings.
	Claims []ClaimResult
}

// ClaimResult is the verification outcome of one paper finding.
type ClaimResult struct {
	// Claim describes the paper's finding.
	Claim string
	// Pass reports whether the regenerated data exhibits it.
	Pass bool
	// Detail quantifies the check.
	Detail string
	// ScaleSensitive marks findings that only emerge at paper-scale
	// data (SF near 1): per-query fixed overheads and cache effects
	// mask them at the tiny scale factors used by fast test runs.
	ScaleSensitive bool
}

// Run executes the complete study.
func (h *Harness) Run(progress io.Writer) (*Study, error) {
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}
	s := &Study{Options: h.Opt}
	logf("figure 2: microbenchmarks ...")
	s.Figure2 = h.Figure2()
	logf("table II: 22 TPC-H queries at SF %g ...", h.Opt.SF)
	var err error
	if s.TableII, err = h.TableII(); err != nil {
		return nil, err
	}
	logf("table III: distributed TPC-H at SF %g, cluster sizes %v ...", h.Opt.DistSF, h.Opt.ClusterSizes)
	if s.TableIII, err = h.TableIII(); err != nil {
		return nil, err
	}
	logf("figure 3: speedups ...")
	s.Figure3 = h.Figure3(s.TableII, s.TableIII)
	logf("figure 4: execution strategies ...")
	if s.Figure4, err = h.Figure4(); err != nil {
		return nil, err
	}
	logf("figures 5-7: cost and energy normalization ...")
	if s.Figure5, err = h.Figure5(s.TableII, s.TableIII); err != nil {
		return nil, err
	}
	if s.Figure6, err = h.Figure6(s.TableII, s.TableIII); err != nil {
		return nil, err
	}
	if s.Figure7, err = h.Figure7(s.TableII, s.TableIII); err != nil {
		return nil, err
	}
	s.Claims = s.VerifyClaims()
	return s, nil
}

// Report renders the full study with paper comparisons.
func (s *Study) Report(h *Harness) string {
	var b strings.Builder
	b.WriteString("WimPi: reproduction of \"The Case for In-Memory OLAP on 'Wimpy' Nodes\" (ICDE 2021)\n")
	fmt.Fprintf(&b, "configuration: SF=%g DistSF=%g seed=%d clusters=%v node-RAM=%.0f MB\n\n",
		s.Options.SF, s.Options.DistSF, s.Options.Seed, s.Options.ClusterSizes,
		float64(s.TableIII.NodeRAMBytes)/(1<<20))
	b.WriteString("== Table I ==\n")
	b.WriteString(h.TableIText())
	b.WriteString("\n== Figure 2 ==\n")
	b.WriteString(s.Figure2.Render())
	b.WriteString("\n== Table II ==\n")
	b.WriteString(s.TableII.Render())
	b.WriteString("\n")
	b.WriteString(s.CompareTableII())
	b.WriteString("\n== Table III ==\n")
	b.WriteString(s.TableIII.Render())
	b.WriteString("\n")
	b.WriteString(s.CompareTableIII())
	b.WriteString("\n== Figure 3 ==\n")
	b.WriteString(s.Figure3.Render())
	b.WriteString("\n== Figure 4 ==\n")
	b.WriteString(s.Figure4.Render())
	b.WriteString("\n== Figure 5 ==\n")
	b.WriteString(s.Figure5.Render())
	b.WriteString("\n== Figure 6 ==\n")
	b.WriteString(s.Figure6.Render())
	b.WriteString("\n== Figure 7 ==\n")
	b.WriteString(s.Figure7.Render())
	b.WriteString("\n== Paper claims ==\n")
	for _, c := range s.Claims {
		status := "PASS"
		if !c.Pass {
			status = "MISS"
			if c.ScaleSensitive {
				status = "MISS (scale-sensitive: rerun near SF 1)"
			}
		}
		fmt.Fprintf(&b, "[%s] %s\n      %s\n", status, c.Claim, c.Detail)
	}
	return b.String()
}

// CompareTableII renders measured-vs-paper Pi slowdowns. Absolute times
// depend on the engine, so the comparison is in relative space: how many
// times slower the Pi is than each server, per query.
func (s *Study) CompareTableII() string {
	var b strings.Builder
	b.WriteString("Table II vs paper (Pi slowdown = t_pi / t_server):\n")
	b.WriteString("    query   measured(op-e5)  paper(op-e5)  measured(op-gold)  paper(op-gold)\n")
	meas5 := s.TableII.PiSlowdowns("op-e5")
	measG := s.TableII.PiSlowdowns("op-gold")
	for _, q := range sortedKeys(s.TableII.Seconds) {
		p5 := PaperTableII[q]["Pi 3B+"] / PaperTableII[q]["op-e5"]
		pg := PaperTableII[q]["Pi 3B+"] / PaperTableII[q]["op-gold"]
		fmt.Fprintf(&b, "    Q%-5d %12.1fx %12.1fx %14.1fx %14.1fx\n", q, meas5[q], p5, measG[q], pg)
	}
	fmt.Fprintf(&b, "    median slowdown vs op-e5: measured %.1fx, paper %.1fx\n",
		median(values(meas5)), median(paperSlowdowns("op-e5")))
	fmt.Fprintf(&b, "    median slowdown vs op-gold: measured %.1fx, paper %.1fx\n",
		median(values(measG)), median(paperSlowdowns("op-gold")))
	return b.String()
}

// CompareTableIII renders measured-vs-paper WimPi scaling shapes.
func (s *Study) CompareTableIII() string {
	var b strings.Builder
	b.WriteString("Table III vs paper (WimPi scaling, smallest/largest cluster ratio):\n")
	for _, q := range s.TableIII.Queries {
		sizes := sortedKeys(s.TableIII.WimPi[q])
		lo, hi := sizes[0], sizes[len(sizes)-1]
		meas := s.TableIII.WimPi[q][lo] / s.TableIII.WimPi[q][hi]
		paper := PaperTableIIIWimPi[q][4] / PaperTableIIIWimPi[q][24]
		fmt.Fprintf(&b, "    Q%-4d x%d/x%d: measured %8.1fx  paper %8.1fx\n", q, lo, hi, meas, paper)
	}
	return b.String()
}

// VerifyClaims checks the paper's headline findings against the
// regenerated data.
func (s *Study) VerifyClaims() []ClaimResult {
	var out []ClaimResult
	add := func(claim string, pass bool, detail string) {
		out = append(out, ClaimResult{Claim: claim, Pass: pass, Detail: detail})
	}
	addScale := func(claim string, pass bool, detail string) {
		out = append(out, ClaimResult{Claim: claim, Pass: pass, Detail: detail, ScaleSensitive: true})
	}

	// Table II: scan-bound Q1 hits the Pi harder than the typical query.
	slow := s.TableII.PiSlowdowns("op-e5")
	med := median(values(slow))
	addScale("Table II: the scan-bound Q1's Pi slowdown exceeds the median slowdown",
		slow[1] > med, fmt.Sprintf("Q1 %.1fx vs median %.1fx", slow[1], med))

	// Table II: CPU-bound Q11 is more competitive than the typical query.
	add("Table II: CPU-bound Q11's Pi slowdown is below the median slowdown",
		slow[11] < med, fmt.Sprintf("Q11 %.1fx vs median %.1fx", slow[11], med))

	// Table II: Q1 leans on bandwidth far more than Q11 on the Pi.
	add("Table II: Q1 spends a larger share of Pi time on memory bandwidth than Q11",
		s.TableII.MemSeqShare[1] > s.TableII.MemSeqShare[11],
		fmt.Sprintf("Q1 bandwidth share %.0f%%, Q11 %.0f%%",
			100*s.TableII.MemSeqShare[1], 100*s.TableII.MemSeqShare[11]))

	// Table III: the thrash cliff on Q1 at the smallest cluster.
	sizes := sortedKeys(s.TableIII.WimPi[1])
	smallest, largest := sizes[0], sizes[len(sizes)-1]
	cliff := s.TableIII.WimPi[1][smallest] / s.TableIII.WimPi[1][largest]
	addScale("Table III: Q1 shows a 10-100x cliff between the smallest and largest cluster",
		cliff >= 10, fmt.Sprintf("x%d/x%d = %.1fx (thrash at x%d: %v)",
			smallest, largest, cliff, smallest, s.TableIII.Thrashed[1][smallest]))

	// Table III: Q13 is flat across cluster sizes.
	flat := true
	base := s.TableIII.WimPi[13][smallest]
	for _, n := range sizes {
		if math.Abs(s.TableIII.WimPi[13][n]-base) > 0.05*base {
			flat = false
		}
	}
	add("Table III: Q13 runs on a single node and is flat across cluster sizes",
		flat, fmt.Sprintf("x%d=%.3fs x%d=%.3fs", smallest, base, largest, s.TableIII.WimPi[13][largest]))

	// Figure 4: data-centric worst everywhere; gaps narrower on the Pi.
	fig4OK := true
	gapNarrower := true
	for q, byStrat := range s.Figure4.Seconds {
		_ = q
		for _, m := range s.Figure4.Machines {
			dc := byStrat[strategies.DataCentric][m]
			if dc < byStrat[strategies.Hybrid][m] || dc < byStrat[strategies.AccessAware][m] {
				fig4OK = false
			}
		}
		gapE5 := byStrat[strategies.DataCentric]["op-e5"] / byStrat[strategies.AccessAware]["op-e5"]
		gapPi := byStrat[strategies.DataCentric]["Pi 3B+"] / byStrat[strategies.AccessAware]["Pi 3B+"]
		if gapPi > gapE5*1.1 {
			gapNarrower = false
		}
	}
	add("Figure 4: data-centric is the worst strategy on every machine", fig4OK, "checked 8 queries x 3 machines")
	add("Figure 4: strategy advantages are less pronounced on the Pi", gapNarrower, "dc/aa gap Pi <= op-e5 per query")

	// Figure 5: the single Pi beats both On-Premises servers on every
	// query; Q13 distributed always loses.
	allAbove := true
	for _, row := range s.Figure5.SF1 {
		for _, v := range row {
			if v <= 1 {
				allAbove = false
			}
		}
	}
	add("Figure 5: a single Pi beats both On-Premises servers MSRP-normalized on every query",
		allAbove, fmt.Sprintf("%d queries x 2 servers", len(s.Figure5.SF1)))
	q13Loses := true
	for _, byServer := range s.Figure5.Dist[13] {
		for _, v := range byServer {
			if v >= 1 {
				q13Loses = false
			}
		}
	}
	addScale("Figure 5: distributed Q13 never reaches break-even (single-node execution, cluster-wide cost)",
		q13Loses, "checked all cluster sizes")

	// Figure 6: the Pi wins hourly-normalized everywhere.
	hourlyAll := true
	minHourly := math.Inf(1)
	for _, row := range s.Figure6.SF1 {
		for _, v := range row {
			if v < minHourly {
				minHourly = v
			}
			if v <= 1 {
				hourlyAll = false
			}
		}
	}
	minDist := math.Inf(1)
	minWhere := ""
	minQ13 := math.Inf(1)
	for q, byNodes := range s.Figure6.Dist {
		for n, row := range byNodes {
			for srv, v := range row {
				if q == 13 {
					if v < minQ13 {
						minQ13 = v
					}
					continue
				}
				if v < minDist {
					minDist = v
					minWhere = fmt.Sprintf("Q%d x%d vs %s", q, n, srv)
				}
				if v <= 1 {
					hourlyAll = false
				}
			}
		}
	}
	add("Figure 6: the Pi configuration beats every Cloud server hourly-normalized (all SF1 queries; all distributed queries but Q13)",
		hourlyAll, fmt.Sprintf("minimum SF1 improvement %.0fx; minimum distributed %.1fx (%s)",
			minHourly, minDist, minWhere))
	// The paper's WimPi-worst-case cell (Q13 at 24 nodes vs the cheapest
	// cloud instance) came out at 3-10x for MonetDB, whose Q13 pays for
	// raw string LIKEs on the servers too. Our dictionary-encoded engine
	// makes Q13 cheap on big-memory servers, so this one cell lands near
	// break-even instead (documented deviation in EXPERIMENTS.md).
	addScale("Figure 6: distributed Q13 is WimPi's weakest hourly cell but stays near break-even or better",
		minQ13 > 0.5, fmt.Sprintf("minimum distributed Q13 improvement %.1fx (paper: 3-10x)", minQ13))

	// Figure 7: energy story — selective Q6 beats scan-bound Q1.
	q6 := s.Figure7.SF1[6]["op-e5"]
	q1 := s.Figure7.SF1[1]["op-e5"]
	add("Figure 7: energy advantage is larger for selective Q6 than scan-bound Q1",
		q6 > q1, fmt.Sprintf("Q6 %.1fx vs Q1 %.1fx (vs op-e5)", q6, q1))

	return out
}

func paperSlowdowns(server string) []float64 {
	var out []float64
	for _, row := range PaperTableII {
		out = append(out, row["Pi 3B+"]/row[server])
	}
	return out
}

func values(m map[int]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func argmax(m map[int]float64) (int, float64) {
	bestK, bestV := 0, math.Inf(-1)
	for k, v := range m {
		if v > bestV {
			bestK, bestV = k, v
		}
	}
	return bestK, bestV
}

// rankAscending returns each key's 1-based rank by ascending value.
func rankAscending(m map[int]float64) map[int]int {
	type kv struct {
		k int
		v float64
	}
	var s []kv
	for k, v := range m {
		s = append(s, kv{k, v})
	}
	sort.Slice(s, func(i, j int) bool { return s[i].v < s[j].v })
	out := make(map[int]int, len(s))
	for i, e := range s {
		out[e.k] = i + 1
	}
	return out
}
