package core

import (
	"fmt"
	"sort"
	"strings"

	"wimpi/internal/cluster"
	"wimpi/internal/exec"
	"wimpi/internal/tpch"
)

// TableIText renders Table I: the hardware specifications of every
// comparison point.
func (h *Harness) TableIText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-12s %-26s %6s %6s %9s %9s %9s %7s\n",
		"Category", "Name", "CPU", "GHz", "Cores", "LLC", "MSRP", "Hourly", "TDP")
	for i := range h.profiles {
		p := &h.profiles[i]
		msrp, hourly, tdp := "-", "-", "-"
		if p.MSRPUSD > 0 {
			msrp = fmt.Sprintf("$%.0f", p.MSRPUSD)
		}
		if p.HourlyUSD > 0 {
			hourly = fmt.Sprintf("$%.4f", p.HourlyUSD)
		}
		if p.TDPWatts > 0 {
			tdp = fmt.Sprintf("%.1f W", p.TDPWatts)
		}
		llc := fmt.Sprintf("%.1f MB", float64(p.LLCBytes)/(1<<20))
		if p.LLCBytes < 1<<20 {
			llc = fmt.Sprintf("%d KB", p.LLCBytes/1024)
		}
		fmt.Fprintf(&b, "%-12s %-12s %-26s %6.1f %6d %9s %9s %9s %7s\n",
			p.Category, p.Name, p.CPU, p.FreqGHz, p.TotalCores(), llc, msrp, hourly, tdp)
	}
	return b.String()
}

// TableIIResult holds the regenerated Table II.
type TableIIResult struct {
	// SF is the scale factor the experiment ran at.
	SF float64
	// Seconds maps query -> profile name -> simulated runtime.
	Seconds map[int]map[string]float64
	// Counters maps query -> the measured work profile.
	Counters map[int]exec.Counters
	// MemoryBound maps query -> whether the Pi run was bandwidth-bound.
	MemoryBound map[int]bool
	// MemSeqShare maps query -> the fraction of the Pi's simulated time
	// spent on sequential bandwidth (the paper's scan-bound axis).
	MemSeqShare map[int]float64
}

// TableII runs all 22 TPC-H queries once on the host engine and
// simulates each comparison point's runtime from the recorded work.
func (h *Harness) TableII() (*TableIIResult, error) {
	_, db := h.sfDatabase()
	res := &TableIIResult{
		SF:          h.Opt.SF,
		Seconds:     make(map[int]map[string]float64),
		Counters:    make(map[int]exec.Counters),
		MemoryBound: make(map[int]bool),
		MemSeqShare: make(map[int]float64),
	}
	for _, q := range tpch.QueryNumbers() {
		r, err := db.Run(tpch.MustQuery(q))
		if err != nil {
			return nil, fmt.Errorf("core: table II Q%d: %w", q, err)
		}
		res.Counters[q] = r.Counters
		res.Seconds[q] = make(map[string]float64)
		for i := range h.profiles {
			p := &h.profiles[i]
			ex := h.Model.Explain(p, r.Counters, p.TotalCores())
			res.Seconds[q][p.Name] = ex.Total
			if p.Name == "Pi 3B+" {
				res.MemoryBound[q] = ex.MemoryBound
				if ex.Total > 0 {
					res.MemSeqShare[q] = ex.MemSeqSeconds / ex.Total
				}
			}
		}
	}
	return res, nil
}

// Render formats the result like the paper's Table II, one row per
// comparison point.
func (r *TableIIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: simulated TPC-H runtimes (s) at SF %g\n", r.SF)
	queries := sortedKeys(r.Seconds)
	fmt.Fprintf(&b, "%-12s", "")
	for _, q := range queries {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("Q%d", q))
	}
	b.WriteString("\n")
	for _, name := range PaperProfiles {
		fmt.Fprintf(&b, "%-12s", name)
		for _, q := range queries {
			fmt.Fprintf(&b, "%8.3f", r.Seconds[q][name])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PiSlowdowns returns, per query, the Pi's slowdown relative to the
// named server (t_pi / t_server) — the paper's central Table II metric.
func (r *TableIIResult) PiSlowdowns(server string) map[int]float64 {
	out := make(map[int]float64, len(r.Seconds))
	for q, row := range r.Seconds {
		if row[server] > 0 {
			out[q] = row["Pi 3B+"] / row[server]
		}
	}
	return out
}

// TableIIIResult holds the regenerated Table III.
type TableIIIResult struct {
	// SF is the distributed scale factor.
	SF float64
	// NodeRAMBytes is the simulated per-node memory.
	NodeRAMBytes int64
	// Queries lists the representative queries.
	Queries []int
	// Servers maps query -> server profile -> simulated seconds
	// (single-node execution of the full dataset).
	Servers map[int]map[string]float64
	// WimPi maps query -> cluster size -> simulated seconds.
	WimPi map[int]map[int]float64
	// Thrashed maps query -> cluster size -> whether a node exceeded
	// its RAM (the paper's 4-node cliff).
	Thrashed map[int]map[int]bool
}

// TableIII runs the eight representative queries on real in-process
// TCP clusters of every configured size, plus single-node runs for the
// server comparison points.
func (h *Harness) TableIII() (*TableIIIResult, error) {
	data, db := h.distDatabase()
	res := &TableIIIResult{
		SF:           h.Opt.DistSF,
		NodeRAMBytes: h.nodeRAMBytes(),
		Queries:      append([]int(nil), tpch.RepresentativeQueries...),
		Servers:      make(map[int]map[string]float64),
		WimPi:        make(map[int]map[int]float64),
		Thrashed:     make(map[int]map[int]bool),
	}
	// Server rows: single-node execution.
	for _, q := range res.Queries {
		r, err := db.Run(tpch.MustQuery(q))
		if err != nil {
			return nil, fmt.Errorf("core: table III Q%d servers: %w", q, err)
		}
		res.Servers[q] = make(map[string]float64)
		for i := range h.profiles {
			p := &h.profiles[i]
			if p.Name == "Pi 3B+" {
				continue
			}
			res.Servers[q][p.Name] = h.Model.Explain(p, r.Counters, p.TotalCores()).Total
		}
		res.WimPi[q] = make(map[int]float64)
		res.Thrashed[q] = make(map[int]bool)
	}
	// WimPi rows: one real cluster per size.
	for _, n := range h.Opt.ClusterSizes {
		lc, err := cluster.StartLocal(n, cluster.WorkerConfig{Source: cluster.SharedSource(data)}, 4)
		if err != nil {
			return nil, fmt.Errorf("core: start %d-node cluster: %w", n, err)
		}
		if _, err := lc.Coordinator.Load(h.Opt.DistSF, h.Opt.Seed); err != nil {
			lc.Close()
			return nil, fmt.Errorf("core: load %d-node cluster: %w", n, err)
		}
		opt := cluster.DefaultSimOptions()
		opt.NodeProfile.RAMBytes = res.NodeRAMBytes
		for _, q := range res.Queries {
			dr, err := lc.Coordinator.Run(q)
			if err != nil {
				lc.Close()
				return nil, fmt.Errorf("core: %d-node Q%d: %w", n, q, err)
			}
			sim := cluster.Simulate(dr, opt)
			res.WimPi[q][n] = sim.Total
			res.Thrashed[q][n] = sim.Thrashed
		}
		lc.Close()
	}
	return res, nil
}

// Render formats the result like the paper's Table III.
func (r *TableIIIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: simulated TPC-H runtimes (s) at SF %g (node RAM %.0f MB)\n",
		r.SF, float64(r.NodeRAMBytes)/(1<<20))
	fmt.Fprintf(&b, "%-14s", "")
	for _, q := range r.Queries {
		fmt.Fprintf(&b, "%9s", fmt.Sprintf("Q%d", q))
	}
	b.WriteString("\n")
	for _, name := range PaperProfiles {
		if name == "Pi 3B+" {
			continue
		}
		fmt.Fprintf(&b, "%-14s", name)
		for _, q := range r.Queries {
			fmt.Fprintf(&b, "%9.3f", r.Servers[q][name])
		}
		b.WriteString("\n")
	}
	sizes := sortedKeys(r.WimPi[r.Queries[0]])
	for _, n := range sizes {
		fmt.Fprintf(&b, "%-14s", fmt.Sprintf("Pi 3B+ x%d", n))
		for _, q := range r.Queries {
			mark := ""
			if r.Thrashed[q][n] {
				mark = "*"
			}
			fmt.Fprintf(&b, "%9s", fmt.Sprintf("%.3f%s", r.WimPi[q][n], mark))
		}
		b.WriteString("\n")
	}
	b.WriteString("(* node working set exceeded RAM: microSD thrashing)\n")
	return b.String()
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
