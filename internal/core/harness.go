package core

import (
	"fmt"
	"runtime"

	"wimpi/internal/engine"
	"wimpi/internal/hardware"
	"wimpi/internal/tpch"
)

// Options parameterizes the experimental study.
type Options struct {
	// SF is the Table II / Figures 3-7 single-node scale factor (the
	// paper uses 1).
	SF float64
	// DistSF is the Table III distributed scale factor (the paper uses
	// 10; the harness defaults lower so the whole study runs on one
	// host, and scales the simulated node RAM to preserve the paper's
	// data-to-memory geometry).
	DistSF float64
	// Seed makes all datasets reproducible.
	Seed uint64
	// ClusterSizes are the WimPi configurations of Table III.
	ClusterSizes []int
	// HostWorkers is the host-side engine parallelism used to run the
	// experiments (it does not affect simulated times).
	HostWorkers int
	// EmulatePaperGeometry scales each simulated node's RAM by
	// DistSF/10 so that the Table III memory-pressure cliff appears at
	// the same cluster sizes as in the paper regardless of DistSF.
	EmulatePaperGeometry bool
}

// DefaultOptions returns a configuration sized to reproduce the paper's
// result shapes on a single host: SF 1 for Table II and SF 1 (RAM-scaled)
// for Table III.
func DefaultOptions() Options {
	return Options{
		SF:                   1,
		DistSF:               1,
		Seed:                 42,
		ClusterSizes:         append([]int(nil), PaperClusterSizes...),
		HostWorkers:          runtime.NumCPU(),
		EmulatePaperGeometry: true,
	}
}

// Harness runs the paper's experiments. Datasets are generated lazily
// and cached; a Harness is not safe for concurrent use.
type Harness struct {
	// Opt is the study configuration.
	Opt Options
	// Model is the hardware cost model.
	Model hardware.Model

	profiles []hardware.Profile

	sfData *tpch.Dataset
	sfDB   *engine.DB

	distData *tpch.Dataset
	distDB   *engine.DB
}

// NewHarness returns a harness for the given options.
func NewHarness(opt Options) (*Harness, error) {
	if opt.SF <= 0 || opt.DistSF <= 0 {
		return nil, fmt.Errorf("core: scale factors must be positive, got SF=%g DistSF=%g", opt.SF, opt.DistSF)
	}
	if len(opt.ClusterSizes) == 0 {
		opt.ClusterSizes = append([]int(nil), PaperClusterSizes...)
	}
	if opt.HostWorkers < 1 {
		opt.HostWorkers = 1
	}
	return &Harness{
		Opt:      opt,
		Model:    hardware.DefaultModel(),
		profiles: hardware.Profiles(),
	}, nil
}

// Profiles returns the study's comparison points (Table I order).
func (h *Harness) Profiles() []hardware.Profile { return h.profiles }

func (h *Harness) profile(name string) *hardware.Profile {
	for i := range h.profiles {
		if h.profiles[i].Name == name {
			return &h.profiles[i]
		}
	}
	return nil
}

// sfDatabase returns the cached SF dataset and engine.
func (h *Harness) sfDatabase() (*tpch.Dataset, *engine.DB) {
	if h.sfDB == nil {
		h.sfData = tpch.Generate(tpch.Config{SF: h.Opt.SF, Seed: h.Opt.Seed})
		h.sfDB = engine.NewDB(engine.Config{Workers: h.Opt.HostWorkers})
		h.sfData.RegisterAll(h.sfDB)
	}
	return h.sfData, h.sfDB
}

// distDatabase returns the cached DistSF dataset and engine.
func (h *Harness) distDatabase() (*tpch.Dataset, *engine.DB) {
	if h.distDB == nil {
		if h.Opt.DistSF == h.Opt.SF {
			d, db := h.sfDatabase()
			h.distData, h.distDB = d, db
			return d, db
		}
		h.distData = tpch.Generate(tpch.Config{SF: h.Opt.DistSF, Seed: h.Opt.Seed})
		h.distDB = engine.NewDB(engine.Config{Workers: h.Opt.HostWorkers})
		h.distData.RegisterAll(h.distDB)
	}
	return h.distData, h.distDB
}

// nodeRAMBytes returns the simulated per-node memory: the Pi's 1 GB,
// scaled by DistSF/10 when emulating the paper's geometry.
func (h *Harness) nodeRAMBytes() int64 {
	ram := hardware.Pi().RAMBytes
	if h.Opt.EmulatePaperGeometry {
		scaled := float64(ram) * h.Opt.DistSF / 10
		return int64(scaled)
	}
	return ram
}
