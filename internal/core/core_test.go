package core

import (
	"io"
	"strings"
	"sync"
	"testing"
)

var (
	studyOnce sync.Once
	studyVal  *Study
	studyH    *Harness
	studyErr  error
)

// testStudy runs the full study once at a small scale for all core tests.
func testStudy(t *testing.T) (*Study, *Harness) {
	t.Helper()
	studyOnce.Do(func() {
		opt := DefaultOptions()
		opt.SF = 0.05
		opt.DistSF = 0.05
		opt.ClusterSizes = []int{4, 8, 12, 24}
		studyH, studyErr = NewHarness(opt)
		if studyErr != nil {
			return
		}
		studyVal, studyErr = studyH.Run(io.Discard)
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return studyVal, studyH
}

func TestNewHarnessValidation(t *testing.T) {
	if _, err := NewHarness(Options{SF: 0, DistSF: 1}); err == nil {
		t.Error("zero SF should error")
	}
	h, err := NewHarness(Options{SF: 1, DistSF: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Opt.ClusterSizes) == 0 || h.Opt.HostWorkers < 1 {
		t.Error("defaults not applied")
	}
	if len(h.Profiles()) != 10 {
		t.Error("profiles missing")
	}
	if h.profile("Pi 3B+") == nil || h.profile("nope") != nil {
		t.Error("profile lookup wrong")
	}
}

func TestPaperDataShape(t *testing.T) {
	if len(PaperTableII) != 22 {
		t.Fatalf("paper Table II has %d queries", len(PaperTableII))
	}
	for q, row := range PaperTableII {
		if len(row) != 10 {
			t.Errorf("Q%d: %d comparison points", q, len(row))
		}
		for name, v := range row {
			if v <= 0 {
				t.Errorf("Q%d %s: nonpositive paper value", q, name)
			}
		}
	}
	if len(PaperTableIIIWimPi) != 8 || len(PaperTableIIIServers) != 8 {
		t.Error("paper Table III incomplete")
	}
	for q, sizes := range PaperTableIIIWimPi {
		if len(sizes) != 6 {
			t.Errorf("Q%d: %d cluster sizes", q, len(sizes))
		}
	}
}

func TestTableIText(t *testing.T) {
	_, h := testStudy(t)
	txt := h.TableIText()
	for _, want := range []string{"op-e5", "Pi 3B+", "$35", "5.1 W", "c6g.metal", "512 KB"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestStudyArtifactsComplete(t *testing.T) {
	s, _ := testStudy(t)
	if len(s.TableII.Seconds) != 22 {
		t.Errorf("Table II has %d queries", len(s.TableII.Seconds))
	}
	for q, row := range s.TableII.Seconds {
		if len(row) != 10 {
			t.Errorf("Q%d: %d profiles", q, len(row))
		}
		for name, v := range row {
			if v <= 0 {
				t.Errorf("Q%d %s: nonpositive simulated time", q, name)
			}
		}
	}
	if len(s.TableIII.WimPi) != 8 {
		t.Errorf("Table III has %d queries", len(s.TableIII.WimPi))
	}
	for _, q := range s.TableIII.Queries {
		if len(s.TableIII.WimPi[q]) != 4 {
			t.Errorf("Q%d: %d cluster sizes", q, len(s.TableIII.WimPi[q]))
		}
		if len(s.TableIII.Servers[q]) != 9 {
			t.Errorf("Q%d: %d servers", q, len(s.TableIII.Servers[q]))
		}
	}
	if len(s.Figure2.SingleCore) != 4 || len(s.Figure2.Host) != 4 {
		t.Error("Figure 2 incomplete")
	}
	if len(s.Figure3.SF1) != 22 || len(s.Figure3.SF10) != 8 {
		t.Error("Figure 3 incomplete")
	}
	if len(s.Figure4.Seconds) != 8 {
		t.Error("Figure 4 incomplete")
	}
	if len(s.Figure5.SF1) != 22 || len(s.Figure6.SF1) != 22 || len(s.Figure7.SF1) != 22 {
		t.Error("Figures 5-7 incomplete")
	}
}

func TestStudyClaims(t *testing.T) {
	s, _ := testStudy(t)
	if len(s.Claims) < 8 {
		t.Fatalf("only %d claims checked", len(s.Claims))
	}
	for _, c := range s.Claims {
		if !c.Pass && !c.ScaleSensitive {
			t.Errorf("paper claim failed: %s (%s)", c.Claim, c.Detail)
		}
		if !c.Pass && c.ScaleSensitive {
			t.Logf("scale-sensitive claim not visible at SF %g: %s (%s)",
				s.Options.SF, c.Claim, c.Detail)
		}
	}
}

func TestStudyReportRenders(t *testing.T) {
	s, h := testStudy(t)
	rep := s.Report(h)
	for _, want := range []string{
		"== Table I ==", "== Figure 2 ==", "== Table II ==", "== Table III ==",
		"== Figure 3 ==", "== Figure 4 ==", "== Figure 5 ==", "== Figure 6 ==",
		"== Figure 7 ==", "== Paper claims ==", "median slowdown",
		"Pi 3B+ x4", "access-aware",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(rep, "[MISS]") {
		t.Log(rep)
		t.Error("report contains failed scale-robust claims")
	}
}

func TestTableIIShapeVsPaper(t *testing.T) {
	s, _ := testStudy(t)
	// Rank correlation between measured and paper Pi slowdowns vs op-e5
	// should be clearly positive: the same queries are hard for the Pi.
	meas := s.TableII.PiSlowdowns("op-e5")
	var paper = map[int]float64{}
	for q, row := range PaperTableII {
		paper[q] = row["Pi 3B+"] / row["op-e5"]
	}
	rho := spearman(meas, paper)
	if rho < 0.3 {
		t.Errorf("Spearman rank correlation with paper = %.2f, want > 0.3", rho)
	}
	t.Logf("rank correlation with paper Table II (vs op-e5): %.2f", rho)
}

func spearman(a, b map[int]float64) float64 {
	ra := rankAscending(a)
	rb := rankAscending(b)
	var n, sumD2 float64
	for k, r1 := range ra {
		r2, ok := rb[k]
		if !ok {
			continue
		}
		d := float64(r1 - r2)
		sumD2 += d * d
		n++
	}
	if n < 2 {
		return 0
	}
	return 1 - 6*sumD2/(n*(n*n-1))
}

func TestHarnessGeometryOption(t *testing.T) {
	opt := DefaultOptions()
	opt.SF, opt.DistSF = 0.01, 0.01
	h, err := NewHarness(opt)
	if err != nil {
		t.Fatal(err)
	}
	scaled := h.nodeRAMBytes()
	opt.EmulatePaperGeometry = false
	h2, err := NewHarness(opt)
	if err != nil {
		t.Fatal(err)
	}
	full := h2.nodeRAMBytes()
	if full != 1<<30 {
		t.Errorf("non-scaled RAM = %d, want 1 GB", full)
	}
	if scaled >= full {
		t.Errorf("scaled RAM %d should be below %d", scaled, full)
	}
	// Scaling preserves the paper geometry: RAM/SF constant.
	if got := float64(scaled); got < float64(full)*0.01/10*0.99 || got > float64(full)*0.01/10*1.01 {
		t.Errorf("scaled RAM = %d, want 1GB * 0.01/10", scaled)
	}
}

func TestTableIIDeterministic(t *testing.T) {
	opt := DefaultOptions()
	opt.SF, opt.DistSF = 0.01, 0.01
	run := func() *TableIIResult {
		h, err := NewHarness(opt)
		if err != nil {
			t.Fatal(err)
		}
		r, err := h.TableII()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	for q, row := range a.Seconds {
		for name, v := range row {
			if b.Seconds[q][name] != v {
				t.Fatalf("Q%d %s: %g vs %g across identical runs", q, name, v, b.Seconds[q][name])
			}
		}
	}
}

func TestPiSlowdownsAndRenderHelpers(t *testing.T) {
	s, _ := testStudy(t)
	slow := s.TableII.PiSlowdowns("op-e5")
	if len(slow) != 22 {
		t.Fatalf("%d slowdowns", len(slow))
	}
	for q, v := range slow {
		if v <= 0 {
			t.Errorf("Q%d slowdown %g", q, v)
		}
	}
	if s.TableII.Render() == "" || s.TableIII.Render() == "" ||
		s.Figure2.Render() == "" || s.Figure3.Render() == "" ||
		s.Figure4.Render() == "" || s.Figure5.Render() == "" {
		t.Error("empty render")
	}
	if median(nil) != 0 {
		t.Error("median of empty should be 0")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
}
