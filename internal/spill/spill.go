// Package spill implements the bounded on-disk spill area behind the
// engine's budget-bounded operators. When a join's build+probe state
// would exceed plan.Context.MemLimitBytes, radix partitions beyond the
// resident set are streamed here and processed partition-at-a-time —
// planned, sequential, charged I/O instead of the OS paging the engine's
// random accesses through swap.
//
// Every write and read charges exec.Counters (SpillWriteBytes /
// SpillReadBytes), so the hardware model prices the spill at the
// device's sequential bandwidth; and every I/O loop is bounded by a
// context, so a cancelled query stops spilling at the next chunk
// boundary.
package spill

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"wimpi/internal/exec"
)

// DefaultAreaLimit bounds a spill area when the caller does not choose:
// generous enough for SF10-class working sets, small enough that a
// runaway query cannot fill the device.
const DefaultAreaLimit = 8 << 30

// ioChunk is the unit of a spill read/write between context checks.
const ioChunk = 64 << 10

// Area is a bounded on-disk spill area: a private temp directory plus a
// byte budget. Close removes everything. An Area is not safe for
// concurrent segment creation; the spill join writes partitions
// sequentially (the scatter order is part of determinism).
type Area struct {
	dir   string
	limit int64
	used  int64
	nseg  int
}

// NewArea creates a spill area under dir (or the OS temp directory when
// dir is empty) holding at most limitBytes (DefaultAreaLimit when 0).
func NewArea(dir string, limitBytes int64) (*Area, error) {
	if limitBytes <= 0 {
		limitBytes = DefaultAreaLimit
	}
	d, err := os.MkdirTemp(dir, "wimpi-spill-*")
	if err != nil {
		return nil, fmt.Errorf("spill: create area: %w", err)
	}
	return &Area{dir: d, limit: limitBytes}, nil
}

// Dir returns the area's directory.
func (a *Area) Dir() string { return a.dir }

// UsedBytes returns the bytes currently written to the area.
func (a *Area) UsedBytes() int64 { return a.used }

// Close removes the area and every segment in it.
func (a *Area) Close() error {
	if a == nil || a.dir == "" {
		return nil
	}
	dir := a.dir
	a.dir = ""
	return os.RemoveAll(dir)
}

// Segment is one spilled partition: its keys and build/probe row ids,
// stored as a flat little-endian file.
type Segment struct {
	path    string
	n       int
	hasRows bool
	bytes   int64
}

// Len returns the segment's row count.
func (s *Segment) Len() int { return s.n }

// SizeBytes returns the segment's on-disk footprint.
func (s *Segment) SizeBytes() int64 { return s.bytes }

// segmentBytes is the on-disk footprint of n (key, row) pairs.
func segmentBytes(n int, hasRows bool) int64 {
	b := int64(n) * 8
	if hasRows {
		b += int64(n) * 4
	}
	return b
}

// WriteSegment streams one partition's keys (and, when non-nil, its row
// ids — rows must then be the same length) into a new segment, charging
// the write as spill I/O. It fails when the segment would push the area
// past its byte budget — the spill area is itself a bounded resource,
// not a second unbounded memory.
func (a *Area) WriteSegment(ctx context.Context, keys []int64, rows []int32, ctr *exec.Counters) (*Segment, error) {
	if a == nil || a.dir == "" {
		return nil, fmt.Errorf("spill: write to closed area")
	}
	if rows != nil && len(rows) != len(keys) {
		return nil, fmt.Errorf("spill: keys/rows length mismatch: %d vs %d", len(keys), len(rows))
	}
	size := segmentBytes(len(keys), rows != nil)
	if a.used+size > a.limit {
		return nil, fmt.Errorf("spill: area budget exceeded: %d + %d > %d bytes", a.used, size, a.limit)
	}
	seg := &Segment{
		path:    filepath.Join(a.dir, fmt.Sprintf("seg-%06d", a.nseg)),
		n:       len(keys),
		hasRows: rows != nil,
		bytes:   size,
	}
	a.nseg++
	f, err := os.Create(seg.path)
	if err != nil {
		return nil, fmt.Errorf("spill: create segment: %w", err)
	}
	if err := writeKeys(ctx, f, keys, ctr); err != nil {
		f.Close()
		os.Remove(seg.path)
		return nil, err
	}
	if rows != nil {
		if err := writeRows(ctx, f, rows, ctr); err != nil {
			f.Close()
			os.Remove(seg.path)
			return nil, err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(seg.path)
		return nil, fmt.Errorf("spill: close segment: %w", err)
	}
	a.used += size
	return seg, nil
}

// writeKeys streams keys to f in ioChunk batches, checking ctx between
// batches and charging each flushed batch.
func writeKeys(ctx context.Context, f *os.File, keys []int64, ctr *exec.Counters) error {
	buf := make([]byte, 0, ioChunk)
	for i, k := range keys {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
		if len(buf) >= ioChunk || i == len(keys)-1 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("spill: write canceled: %w", context.Cause(ctx))
			}
			if _, err := f.Write(buf); err != nil {
				return fmt.Errorf("spill: write segment: %w", err)
			}
			ctr.SpillWriteBytes += int64(len(buf))
			buf = buf[:0]
		}
	}
	return nil
}

// writeRows is writeKeys for the 4-byte row ids.
func writeRows(ctx context.Context, f *os.File, rows []int32, ctr *exec.Counters) error {
	buf := make([]byte, 0, ioChunk)
	for i, r := range rows {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
		if len(buf) >= ioChunk || i == len(rows)-1 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("spill: write canceled: %w", context.Cause(ctx))
			}
			if _, err := f.Write(buf); err != nil {
				return fmt.Errorf("spill: write segment: %w", err)
			}
			ctr.SpillWriteBytes += int64(len(buf))
			buf = buf[:0]
		}
	}
	return nil
}

// Read streams the segment back, charging the read as spill I/O. The
// returned rows slice is nil when the segment was written without rows.
// A segment may be read any number of times (the spill join's inner
// pass re-reads probe partitions).
func (s *Segment) Read(ctx context.Context, ctr *exec.Counters) (keys []int64, rows []int32, err error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, nil, fmt.Errorf("spill: open segment: %w", err)
	}
	defer f.Close()
	keys = make([]int64, s.n)
	if err := readChunks(ctx, f, int64(s.n)*8, ctr, func(off int64, b []byte) {
		for len(b) >= 8 {
			keys[off/8] = int64(binary.LittleEndian.Uint64(b))
			b = b[8:]
			off += 8
		}
	}); err != nil {
		return nil, nil, err
	}
	if !s.hasRows {
		return keys, nil, nil
	}
	rows = make([]int32, s.n)
	if err := readChunks(ctx, f, int64(s.n)*4, ctr, func(off int64, b []byte) {
		for len(b) >= 4 {
			rows[off/4] = int32(binary.LittleEndian.Uint32(b))
			b = b[4:]
			off += 4
		}
	}); err != nil {
		return nil, nil, err
	}
	return keys, rows, nil
}

// readChunks reads exactly total bytes from f in ioChunk batches,
// handing each batch (with its offset within this call's span) to emit,
// checking ctx between batches and charging each batch read.
func readChunks(ctx context.Context, f *os.File, total int64, ctr *exec.Counters, emit func(off int64, b []byte)) error {
	buf := make([]byte, ioChunk)
	var off int64
	for off < total {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("spill: read canceled: %w", context.Cause(ctx))
		}
		want := total - off
		if want > ioChunk {
			want = ioChunk
		}
		// ReadFull keeps chunks aligned to whole values even when the
		// underlying read returns short.
		if _, err := io.ReadFull(f, buf[:want]); err != nil {
			return fmt.Errorf("spill: read segment: %w", err)
		}
		emit(off, buf[:want])
		ctr.SpillReadBytes += want
		off += want
	}
	return nil
}
