package spill

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseByteSize parses a human byte size for the -mem-budget CLI flags:
// a plain integer is bytes, and a k/m/g suffix (case-insensitive,
// optionally followed by "b" or "ib") scales by the binary unit.
// "0" and "" mean unlimited.
//
//lint:allow costaccounting -- flag parsing at startup, not per-query kernel work
func ParseByteSize(s string) (int64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, nil
	}
	shift := uint(0)
	for _, u := range []struct {
		suffix string
		shift  uint
	}{
		{"kib", 10}, {"kb", 10}, {"k", 10},
		{"mib", 20}, {"mb", 20}, {"m", 20},
		{"gib", 30}, {"gb", 30}, {"g", 30},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSuffix(t, u.suffix)
			shift = u.shift
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("spill: bad byte size %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("spill: negative byte size %q", s)
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("spill: byte size %q overflows", s)
	}
	return n << shift, nil
}

// FormatByteSize renders a byte count the way ParseByteSize reads it,
// for logs and EXPLAIN output.
func FormatByteSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dg", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dm", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dk", n>>10)
	default:
		return strconv.FormatInt(n, 10)
	}
}
