package spill

import (
	"context"
	"errors"
	"os"
	"testing"

	"wimpi/internal/exec"
)

func TestSegmentRoundTrip(t *testing.T) {
	a, err := NewArea(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	n := 50_000 // several ioChunk batches
	keys := make([]int64, n)
	rows := make([]int32, n)
	for i := range keys {
		keys[i] = int64(i)*7 - 1000
		rows[i] = int32(n - i)
	}
	var ctr exec.Counters
	seg, err := a.WriteSegment(context.Background(), keys, rows, &ctr)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Len() != n {
		t.Fatalf("len %d, want %d", seg.Len(), n)
	}
	wantBytes := int64(n) * 12
	if ctr.SpillWriteBytes != wantBytes {
		t.Fatalf("charged %d write bytes, want %d", ctr.SpillWriteBytes, wantBytes)
	}
	if a.UsedBytes() != wantBytes {
		t.Fatalf("area used %d, want %d", a.UsedBytes(), wantBytes)
	}
	// Segments must be re-readable (the spill join re-reads probe
	// partitions for its fill pass).
	for pass := 0; pass < 2; pass++ {
		gk, gr, err := seg.Read(context.Background(), &ctr)
		if err != nil {
			t.Fatal(err)
		}
		for i := range keys {
			if gk[i] != keys[i] || gr[i] != rows[i] {
				t.Fatalf("pass %d row %d: (%d,%d), want (%d,%d)", pass, i, gk[i], gr[i], keys[i], rows[i])
			}
		}
	}
	if ctr.SpillReadBytes != 2*wantBytes {
		t.Fatalf("charged %d read bytes, want %d", ctr.SpillReadBytes, 2*wantBytes)
	}
}

func TestSegmentWithoutRows(t *testing.T) {
	a, err := NewArea(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var ctr exec.Counters
	seg, err := a.WriteSegment(context.Background(), []int64{1, 2, 3}, nil, &ctr)
	if err != nil {
		t.Fatal(err)
	}
	keys, rows, err := seg.Read(context.Background(), &ctr)
	if err != nil {
		t.Fatal(err)
	}
	if rows != nil {
		t.Fatal("rows must be nil for a keys-only segment")
	}
	if len(keys) != 3 || keys[2] != 3 {
		t.Fatalf("bad keys %v", keys)
	}
}

func TestAreaBudgetEnforced(t *testing.T) {
	a, err := NewArea(t.TempDir(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var ctr exec.Counters
	if _, err := a.WriteSegment(context.Background(), make([]int64, 8), nil, &ctr); err != nil {
		t.Fatalf("64 bytes under a 100-byte budget: %v", err)
	}
	if _, err := a.WriteSegment(context.Background(), make([]int64, 8), nil, &ctr); err == nil {
		t.Fatal("second segment must exceed the budget")
	}
}

func TestAreaCloseRemovesEverything(t *testing.T) {
	a, err := NewArea(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := a.Dir()
	var ctr exec.Counters
	if _, err := a.WriteSegment(context.Background(), []int64{1}, nil, &ctr); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("area dir still exists: %v", err)
	}
	if _, err := a.WriteSegment(context.Background(), []int64{1}, nil, &ctr); err == nil {
		t.Fatal("write to a closed area must fail")
	}
}

func TestWriteCanceledByContext(t *testing.T) {
	a, err := NewArea(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ctr exec.Counters
	if _, err := a.WriteSegment(ctx, make([]int64, 100_000), nil, &ctr); err == nil {
		t.Fatal("write under a canceled context must fail")
	}
	seg, err := a.WriteSegment(context.Background(), []int64{7}, nil, &ctr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := seg.Read(ctx, &ctr); err == nil {
		t.Fatal("read under a canceled context must fail")
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1234", 1234, false},
		{"64k", 64 << 10, false},
		{"512M", 512 << 20, false},
		{"1g", 1 << 30, false},
		{"1GiB", 1 << 30, false},
		{"2gb", 2 << 30, false},
		{" 16m ", 16 << 20, false},
		{"-1", 0, true},
		{"10x", 0, true},
		{"g", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseByteSize(tc.in)
		if tc.err != (err != nil) {
			t.Fatalf("%q: err=%v, want err=%v", tc.in, err, tc.err)
		}
		if got != tc.want {
			t.Fatalf("%q: %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, n := range []int64{0, 1234, 64 << 10, 512 << 20, 3 << 30} {
		rt, err := ParseByteSize(FormatByteSize(n))
		if err != nil || rt != n {
			t.Fatalf("round trip %d: %d, %v", n, rt, err)
		}
	}
}
