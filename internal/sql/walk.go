package sql

import "fmt"

// walkCols appends the column names referenced by e, in text order, to
// out. Subquery bodies are skipped: their columns bind in their own
// scope (the probe side of an IN subquery still counts).
func walkCols(e Expr, out []string) []string {
	switch ex := e.(type) {
	case *ColRef:
		return append(out, ex.Name)
	case *BinExpr:
		return walkCols(ex.R, walkCols(ex.L, out))
	case *NotExpr:
		return walkCols(ex.E, out)
	case *InExpr:
		out = walkCols(ex.E, out)
		for _, v := range ex.List {
			out = walkCols(v, out)
		}
		return out
	case *BetweenExpr:
		return walkCols(ex.Hi, walkCols(ex.Lo, walkCols(ex.E, out)))
	case *LikeExpr:
		return walkCols(ex.E, out)
	case *CaseExpr:
		return walkCols(ex.Else, walkCols(ex.Then, walkCols(ex.When, out)))
	case *FuncExpr:
		for _, a := range ex.Args {
			out = walkCols(a, out)
		}
		return out
	case *NumLit, *StrLit, *DateLit, *IntervalLit, *SubqueryExpr:
		// Literals carry no columns; subquery bodies bind in their own scope.
	}
	return out
}

// relsOf returns the distinct relation indices referenced by e, in
// first-reference order.
func relsOf(e Expr, sc scope) []int {
	var rels []int
	for _, name := range walkCols(e, nil) {
		b, ok := sc[name]
		if !ok {
			continue
		}
		seen := false
		for _, r := range rels {
			if r == b.rel {
				seen = true
			}
		}
		if !seen {
			rels = append(rels, b.rel)
		}
	}
	return rels
}

// containsAgg reports whether e contains an aggregate call.
func containsAgg(e Expr) bool {
	switch ex := e.(type) {
	case *FuncExpr:
		if isAggName(ex.Name) {
			return true
		}
		for _, a := range ex.Args {
			if containsAgg(a) {
				return true
			}
		}
	case *BinExpr:
		return containsAgg(ex.L) || containsAgg(ex.R)
	case *CaseExpr:
		return containsAgg(ex.When) || containsAgg(ex.Then) || containsAgg(ex.Else)
	case *NotExpr:
		return containsAgg(ex.E)
	case *BetweenExpr:
		return containsAgg(ex.E) || containsAgg(ex.Lo) || containsAgg(ex.Hi)
	case *LikeExpr:
		return containsAgg(ex.E)
	case *InExpr:
		return containsAgg(ex.E)
	case *ColRef, *NumLit, *StrLit, *DateLit, *IntervalLit, *SubqueryExpr:
		// Leaves; a subquery's aggregates belong to its own lowering.
	}
	return false
}

// collectScalarSubs appends the scalar subqueries of e in text order.
// IN subqueries are not scalar: they lower to semi/anti joins.
func collectScalarSubs(e Expr, out []*SubqueryExpr) []*SubqueryExpr {
	switch ex := e.(type) {
	case *SubqueryExpr:
		return append(out, ex)
	case *BinExpr:
		return collectScalarSubs(ex.R, collectScalarSubs(ex.L, out))
	case *NotExpr:
		return collectScalarSubs(ex.E, out)
	case *BetweenExpr:
		return collectScalarSubs(ex.Hi, collectScalarSubs(ex.Lo, collectScalarSubs(ex.E, out)))
	case *CaseExpr:
		return collectScalarSubs(ex.Else, collectScalarSubs(ex.Then, collectScalarSubs(ex.When, out)))
	case *FuncExpr:
		for _, a := range ex.Args {
			out = collectScalarSubs(a, out)
		}
		return out
	case *InExpr:
		return collectScalarSubs(ex.E, out)
	case *LikeExpr:
		return collectScalarSubs(ex.E, out)
	case *ColRef, *NumLit, *StrLit, *DateLit, *IntervalLit:
		// Leaves hold no subquery.
	}
	return out
}

// evalScalar evaluates a literal/subquery arithmetic tree numerically,
// with the subquery values already resolved. It mirrors the imperative
// threshold arithmetic of the hand-built queries exactly (same
// association order, so identical float bits).
func evalScalar(e Expr, resolved map[*SubqueryExpr]float64) (float64, error) {
	switch ex := e.(type) {
	case *NumLit:
		return numValue(ex), nil
	case *SubqueryExpr:
		v, ok := resolved[ex]
		if !ok {
			return 0, errAt(ex.Pos, "internal: unresolved scalar subquery")
		}
		return v, nil
	case *BinExpr:
		l, err := evalScalar(ex.L, resolved)
		if err != nil {
			return 0, err
		}
		r, err := evalScalar(ex.R, resolved)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			return l / r, nil
		}
	case *ColRef, *StrLit, *DateLit, *IntervalLit, *FuncExpr, *CaseExpr,
		*NotExpr, *InExpr, *BetweenExpr, *LikeExpr:
		// Not scalar arithmetic; fall through to the error below.
	}
	return 0, errAt(e.pos(), "scalar subquery comparisons support only literal arithmetic")
}

// dedupAppend appends name to names unless already present.
func dedupAppend(names []string, name string) []string {
	for _, n := range names {
		if n == name {
			return names
		}
	}
	return append(names, name)
}

// internalf builds an unpositioned internal error.
func internalf(format string, args ...any) error {
	return fmt.Errorf("sql: "+format, args...)
}
