package sql_test

import (
	"fmt"
	"testing"

	"wimpi/internal/colstore"
	"wimpi/internal/engine"
	"wimpi/internal/plan"
	"wimpi/internal/tpch"
)

// TestSQLPlansAreSpillable: every SQL-planned TPC-H query with a join
// must be recognized by the spill-capability scan — including plans
// wrapped in the frontend's memo (CTE) and deferred (scalar subquery)
// nodes — so a memory budget spills it instead of cancelling it.
func TestSQLPlansAreSpillable(t *testing.T) {
	data := fixture()
	db := engine.NewDB(engine.Config{})
	data.RegisterAll(db)
	spillable := 0
	for q := 1; q <= 22; q++ {
		pl := planSQL(t, db, q)
		hand := plan.Spillable(tpch.MustQuery(q))
		got := plan.Spillable(pl.Node)
		if hand && !got {
			t.Errorf("Q%d: hand-built plan is spillable but the SQL plan is not (capability scan blocked by a frontend node?)", q)
		}
		if got {
			spillable++
		}
	}
	if spillable < 15 {
		t.Fatalf("only %d/22 SQL plans spillable", spillable)
	}
}

// TestSQLSpillsUnderBudget: a SQL-planned join query under a tiny
// budget runs through the spill scheduler and stays byte-identical to
// the unbudgeted run.
func TestSQLSpillsUnderBudget(t *testing.T) {
	data := fixture()
	free := engine.NewDB(engine.Config{})
	data.RegisterAll(free)
	budgeted := engine.NewDB(engine.Config{MemBudgetBytes: 64 << 10, SpillDir: t.TempDir()})
	data.RegisterAll(budgeted)
	for _, q := range []int{3, 5, 10} {
		t.Run(fmt.Sprintf("Q%d", q), func(t *testing.T) {
			want, err := free.Run(planSQL(t, free, q).Node)
			if err != nil {
				t.Fatal(err)
			}
			got, err := budgeted.Run(planSQL(t, budgeted, q).Node)
			if err != nil {
				t.Fatal(err)
			}
			if ok, why := colstore.TablesIdentical(want.Table, got.Table); !ok {
				t.Fatalf("budgeted SQL result differs: %s", why)
			}
			if got.Counters.SpillWriteBytes == 0 || got.Counters.SpillReadBytes == 0 {
				t.Fatalf("budgeted SQL run did not spill: %+v", got.Counters)
			}
		})
	}
}

