package sql_test

import (
	"fmt"
	"strings"
	"testing"

	"wimpi/internal/sql"
	"wimpi/internal/tpch"
)

// TestDiagnosticsGolden freezes the parser's and binder's error
// messages, including line:column positions, so diagnostics stay
// stable and informative. Each case is one statement that must fail.
func TestDiagnosticsGolden(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"unknown-table", `select x as x from nosuch`},
		{"unknown-column", `select l_orderkey, foo from lineitem`},
		{"unknown-where-column", `select l_orderkey from lineitem where ship_date > date '1995-01-01'`},
		{"missing-alias", `select sum(l_quantity) from lineitem`},
		{"bad-keyword", `selectx 1 from lineitem`},
		{"missing-from", `select l_orderkey`},
		{"trailing-garbage", `select l_orderkey from lineitem order by l_orderkey xyz`},
		{"unclosed-paren", `select l_orderkey from lineitem where l_orderkey in (1, 2`},
		{"unterminated-string", `select l_orderkey from lineitem where l_comment = 'oops`},
		{"agg-nested-in-agg", `select sum(max(l_quantity)) as x from lineitem`},
		{"agg-in-where", `select l_orderkey from lineitem where sum(l_quantity) > 5`},
		{"bare-agg-no-group", `select l_orderkey, sum(l_quantity) as s from lineitem`},
		{"group-by-unknown", `select count(*) as n from lineitem group by nope`},
		{"like-on-int", `select l_orderkey from lineitem where l_orderkey like 'x%'`},
		{"date-cmp-string", `select l_orderkey from lineitem where l_shipdate = 'abc'`},
		{"arith-on-string", `select l_comment + 1 as x from lineitem`},
		{"date-plus-int", `select l_orderkey from lineitem where l_shipdate > l_shipdate + 1`},
		{"interval-needs-date", `select l_orderkey from lineitem where l_orderkey > 1 + interval '3' day`},
		{"no-join-predicate", `select l_orderkey from lineitem, orders`},
		{"cross-type-col-cmp", `select l_orderkey from lineitem where l_quantity < l_shipdate`},
		{"order-by-unknown", `select l_orderkey from lineitem order by missing`},
		{"duplicate-with", "with a as (select l_orderkey from lineitem),\n a as (select l_orderkey from lineitem)\nselect l_orderkey from a"},
		{"substring-mid", `select substring(l_comment, 3, 2) as x from lineitem`},
		{"in-list-type-mix", `select l_orderkey from lineitem where l_shipmode in ('MAIL', 7)`},
		{"between-on-string", `select l_orderkey from lineitem where l_comment between 'a' and 'b'`},
		{"having-without-agg", `select l_orderkey from lineitem having l_orderkey > 5`},
	}
	db := reportDB(4)
	var b strings.Builder
	for _, c := range cases {
		_, err := sql.Plan(db, c.text, sql.Options{UniqueKeys: tpch.TableKeys()})
		if err == nil {
			t.Errorf("%s: expected an error, statement planned fine", c.name)
			continue
		}
		fmt.Fprintf(&b, "%s: %v\n", c.name, err)
	}
	golden(t, "diagnostics.golden", b.String())
}

// TestDiagnosticPositions spot-checks that binder errors carry 1-based
// line:column positions pointing at the offending token.
func TestDiagnosticPositions(t *testing.T) {
	db := reportDB(4)
	_, err := sql.Plan(db, "select l_orderkey,\n  foo\nfrom lineitem", sql.Options{})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:3") {
		t.Errorf("error should point at line 2 col 3: %v", err)
	}
}
