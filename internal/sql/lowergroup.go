package sql

import (
	"fmt"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
	"wimpi/internal/plan"
)

// isAggName reports whether name is an aggregate function.
func isAggName(name string) bool {
	switch name {
	case "sum", "count", "avg", "min", "max", "sumi":
		return true
	}
	return false
}

// lowerOutput lowers everything above the joined relation tree: the
// aggregation (when present), HAVING, the final projection in
// select-list order, and ORDER BY / LIMIT.
func (pl *planner) lowerOutput(b *SelectBlock, node plan.Node, sc scope, outCols []colInfo, resolved map[*SubqueryExpr]float64) (plan.Node, error) {
	if blockHasAgg(b) || len(b.GroupBy) > 0 {
		var err error
		node, err = pl.lowerAggregate(b, node, sc, outCols, resolved)
		if err != nil {
			return nil, err
		}
	} else {
		if b.Having != nil {
			return nil, errAt(b.Having.pos(), "HAVING needs a GROUP BY or aggregates")
		}
		cols := make([]plan.NamedExpr, len(b.Items))
		for i := range b.Items {
			e, err := pl.lowerExpr(b.Items[i].Expr, sc)
			if err != nil {
				return nil, err
			}
			cols[i] = plan.NamedExpr{Name: outCols[i].Name, Expr: e}
		}
		node = &plan.Project{Input: node, Cols: cols}
	}
	return pl.orderLimit(b, node, outCols)
}

// lowerAggregate lowers GROUP BY / aggregate select lists: an optional
// pre-projection for computed keys, the GroupBy itself (aggregate
// arguments evaluate inline over its input), a HAVING filter, and the
// final projection computing any arithmetic over aggregates.
func (pl *planner) lowerAggregate(b *SelectBlock, node plan.Node, sc scope, outCols []colInfo, resolved map[*SubqueryExpr]float64) (plan.Node, error) {
	keyNames := make([]string, len(b.GroupBy))
	keyItems := make([]*SelectItem, len(b.GroupBy))
	needPre := false
	for gi, g := range b.GroupBy {
		keyNames[gi] = g.Name
		for i := range b.Items {
			if outName(&b.Items[i]) == g.Name {
				keyItems[gi] = &b.Items[i]
			}
		}
		if keyItems[gi] == nil {
			return nil, errAt(g.Pos, "GROUP BY column %q is not in the select list", g.Name)
		}
		cr, isCol := keyItems[gi].Expr.(*ColRef)
		if !isCol || cr.Name != g.Name {
			needPre = true
		}
	}
	isKey := func(name string) bool {
		for _, k := range keyNames {
			if k == name {
				return true
			}
		}
		return false
	}

	var aggs []plan.AggSpec
	post := make([]plan.NamedExpr, 0, len(b.Items))
	hidden := 0
	for i := range b.Items {
		it := &b.Items[i]
		name := outName(it)
		if isKey(name) {
			post = append(post, plan.NamedExpr{Name: name, Expr: exec.Col{Name: name}})
			continue
		}
		if fe, ok := it.Expr.(*FuncExpr); ok && isAggName(fe.Name) {
			spec, err := pl.aggSpec(name, fe, sc)
			if err != nil {
				return nil, err
			}
			aggs = append(aggs, spec)
			post = append(post, plan.NamedExpr{Name: name, Expr: exec.Col{Name: name}})
			continue
		}
		if !containsAgg(it.Expr) {
			return nil, errAt(it.Pos, "column %q must appear in GROUP BY or inside an aggregate", name)
		}
		e, err := pl.rewriteAggExpr(it.Expr, sc, &aggs, &hidden)
		if err != nil {
			return nil, err
		}
		post = append(post, plan.NamedExpr{Name: name, Expr: e})
	}

	input := node
	if needPre {
		pre := make([]plan.NamedExpr, 0, len(keyNames))
		for gi := range keyNames {
			e, err := pl.lowerExpr(keyItems[gi].Expr, sc)
			if err != nil {
				return nil, err
			}
			pre = append(pre, plan.NamedExpr{Name: keyNames[gi], Expr: e})
		}
		// Pass through every column the aggregate arguments read.
		var pass []string
		for i := range b.Items {
			if isKey(outName(&b.Items[i])) {
				continue
			}
			for _, n := range walkCols(b.Items[i].Expr, nil) {
				if !isKey(n) {
					pass = dedupAppend(pass, n)
				}
			}
		}
		for _, n := range pass {
			pre = append(pre, plan.NamedExpr{Name: n, Expr: exec.Col{Name: n}})
		}
		input = &plan.Project{Input: node, Cols: pre}
	}

	var out plan.Node = &plan.GroupBy{Input: input, Keys: keyNames, Aggs: aggs}

	if b.Having != nil {
		hsc := scope{}
		for _, c := range outCols {
			hsc[c.Name] = colBind{typ: c.Type}
		}
		for _, a := range aggs {
			if _, ok := hsc[a.Name]; !ok {
				typ := colstore.Float64
				if a.Func == plan.Count || a.Func == plan.SumI {
					typ = colstore.Int64
				}
				hsc[a.Name] = colBind{typ: typ}
			}
		}
		var preds []exec.Pred
		for _, c := range flattenAnd(b.Having) {
			if resolved != nil && len(collectScalarSubs(c, nil)) > 0 {
				cmp, ok := c.(*BinExpr)
				var col *ColRef
				okOp := false
				if ok {
					col, _ = cmp.L.(*ColRef)
					_, okOp = cmpOps[cmp.Op]
				}
				if col == nil || !okOp {
					return nil, errAt(c.pos(), "scalar subqueries are supported only as `column <cmp> expression`")
				}
				bind, okc := hsc[col.Name]
				if !okc {
					return nil, errAt(col.Pos, "unknown column %q", col.Name)
				}
				if bind.typ != colstore.Float64 {
					return nil, errAt(col.Pos, "scalar subquery comparison needs a float column, got %s", bind.typ)
				}
				v, err := evalScalar(cmp.R, resolved)
				if err != nil {
					return nil, err
				}
				preds = append(preds, exec.CmpF{Column: col.Name, Op: cmpOps[cmp.Op], V: v})
				continue
			}
			p, err := pl.lowerPred(c, hsc)
			if err != nil {
				return nil, err
			}
			preds = append(preds, p)
		}
		var p exec.Pred
		if len(preds) == 1 {
			p = preds[0]
		} else {
			p = exec.AndOf(preds...)
		}
		out = &plan.Filter{Input: out, Pred: p}
	}

	return &plan.Project{Input: out, Cols: post}, nil
}

// aggSpec lowers one aggregate call.
func (pl *planner) aggSpec(name string, fe *FuncExpr, sc scope) (plan.AggSpec, error) {
	var fn plan.AggFunc
	switch fe.Name {
	case "sum":
		fn = plan.Sum
	case "avg":
		fn = plan.Avg
	case "min":
		fn = plan.Min
	case "max":
		fn = plan.Max
	case "sumi":
		fn = plan.SumI
	case "count":
		// The dialect has no NULLs, so count(col) == count(*).
		return plan.AggSpec{Name: name, Func: plan.Count}, nil
	}
	arg, err := pl.lowerExpr(fe.Args[0], sc)
	if err != nil {
		return plan.AggSpec{}, err
	}
	return plan.AggSpec{Name: name, Func: fn, Arg: arg}, nil
}

// rewriteAggExpr rewrites arithmetic over aggregates (Q8's market share,
// Q14's promo ratio): each aggregate becomes a hidden __a<i> output of
// the GroupBy, and the returned expression computes the item from those
// columns in the final projection.
func (pl *planner) rewriteAggExpr(e Expr, sc scope, aggs *[]plan.AggSpec, hidden *int) (exec.Expr, error) {
	switch ex := e.(type) {
	case *FuncExpr:
		if isAggName(ex.Name) {
			name := fmt.Sprintf("__a%d", *hidden)
			*hidden++
			spec, err := pl.aggSpec(name, ex, sc)
			if err != nil {
				return nil, err
			}
			*aggs = append(*aggs, spec)
			return exec.Col{Name: name}, nil
		}
	case *NumLit:
		return exec.ConstF{V: numValue(ex)}, nil
	case *BinExpr:
		l, err := pl.rewriteAggExpr(ex.L, sc, aggs, hidden)
		if err != nil {
			return nil, err
		}
		r, err := pl.rewriteAggExpr(ex.R, sc, aggs, hidden)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "+":
			return exec.Add(l, r), nil
		case "-":
			return exec.Sub(l, r), nil
		case "*":
			return exec.Mul(l, r), nil
		case "/":
			return exec.Div(l, r), nil
		}
	case *ColRef, *StrLit, *DateLit, *IntervalLit, *CaseExpr, *NotExpr,
		*InExpr, *BetweenExpr, *LikeExpr, *SubqueryExpr:
		// Not arithmetic over aggregates; fall through to the error.
	}
	return nil, errAt(e.pos(), "unsupported expression around an aggregate")
}

// orderLimit applies ORDER BY and LIMIT over the final projection.
func (pl *planner) orderLimit(b *SelectBlock, node plan.Node, outCols []colInfo) (plan.Node, error) {
	if len(b.OrderBy) > 0 {
		keys := make([]exec.SortKey, len(b.OrderBy))
		for i, k := range b.OrderBy {
			found := false
			for _, c := range outCols {
				if c.Name == k.Name {
					found = true
				}
			}
			if !found {
				return nil, errAt(k.Pos, "ORDER BY column %q is not in the select list", k.Name)
			}
			keys[i] = exec.SortKey{Column: k.Name, Desc: k.Desc}
		}
		n := 0
		if b.Limit >= 0 {
			n = b.Limit
		}
		return &plan.OrderBy{Input: node, Keys: keys, N: n}, nil
	}
	if b.Limit >= 0 {
		return &plan.Limit{Input: node, N: b.Limit}, nil
	}
	return node, nil
}

// lowerLeftCount lowers the dialect's one outer-join shape — a two-table
// `left join` grouped by the probe table's unique key with a single
// count aggregate — directly to the engine's LeftCount join, which
// emits every probe row plus its match count (Q13).
func (pl *planner) lowerLeftCount(b *SelectBlock, rels []relInfo, sc scope, outCols []colInfo, outUkey []string) (plan.Node, blockOut, error) {
	f := &b.From[1]
	if f.On == nil {
		return nil, blockOut{}, errAt(f.Pos, "left join needs an ON condition")
	}
	if b.Having != nil {
		return nil, blockOut{}, errAt(b.Having.pos(), "HAVING is not supported with left join")
	}
	if rels[0].table == "" || rels[1].table == "" {
		return nil, blockOut{}, errAt(f.Pos, "left join supports base tables only")
	}

	var probeKey, buildKey string
	var relPreds [2][]exec.Pred
	classify := func(c Expr) error {
		if a, bcol, ok := colEquality(c, sc); ok {
			if probeKey != "" {
				return errAt(c.pos(), "left join supports a single equality join condition")
			}
			if sc[a.Name].rel == 0 {
				probeKey, buildKey = a.Name, bcol.Name
			} else {
				probeKey, buildKey = bcol.Name, a.Name
			}
			return nil
		}
		rs := relsOf(c, sc)
		if len(rs) > 1 {
			return errAt(c.pos(), "left join filters must reference a single table")
		}
		r := 0
		if len(rs) == 1 {
			r = rs[0]
		}
		p, err := pl.lowerPred(c, sc)
		if err != nil {
			return err
		}
		relPreds[r] = append(relPreds[r], p)
		return nil
	}
	for _, c := range flattenAnd(f.On) {
		if err := classify(c); err != nil {
			return nil, blockOut{}, err
		}
	}
	if b.Where != nil {
		for _, c := range flattenAnd(b.Where) {
			if err := classify(c); err != nil {
				return nil, blockOut{}, err
			}
		}
	}
	if probeKey == "" {
		return nil, blockOut{}, errAt(f.Pos, "left join needs an equality join condition")
	}
	if !matchKeySet(groupNames(b), rels[0].ukey) {
		return nil, blockOut{}, errAt(b.Pos, "left join requires GROUP BY on the probe table's unique key")
	}

	countAlias := ""
	post := make([]plan.NamedExpr, 0, len(b.Items))
	for i := range b.Items {
		it := &b.Items[i]
		if fe, ok := it.Expr.(*FuncExpr); ok && fe.Name == "count" {
			if countAlias != "" {
				return nil, blockOut{}, errAt(fe.Pos, "left join supports a single count() aggregate")
			}
			if len(fe.Args) != 1 {
				return nil, blockOut{}, errAt(fe.Pos, "left join count() needs the joined table's column as argument")
			}
			cr, okc := fe.Args[0].(*ColRef)
			if !okc || sc[cr.Name].rel != 1 {
				return nil, blockOut{}, errAt(fe.Pos, "left join count() needs the joined table's column as argument")
			}
			countAlias = outName(it)
			post = append(post, plan.NamedExpr{Name: countAlias, Expr: exec.Col{Name: countAlias}})
			continue
		}
		cr, okc := it.Expr.(*ColRef)
		if !okc || sc[cr.Name].rel != 0 {
			return nil, blockOut{}, errAt(it.Pos, "left join select items must be probe columns or one count()")
		}
		post = append(post, plan.NamedExpr{Name: outName(it), Expr: exec.Col{Name: cr.Name}})
	}
	if countAlias == "" {
		return nil, blockOut{}, errAt(b.Pos, "left join blocks must aggregate with count()")
	}

	used := pl.usedCols(b)
	used = dedupAppend(used, probeKey)
	used = dedupAppend(used, buildKey)
	nodes := make([]plan.Node, 2)
	for i := 0; i < 2; i++ {
		var colsSel []string
		for _, c := range rels[i].cols {
			for _, u := range used {
				if u == c.Name {
					colsSel = append(colsSel, c.Name)
					break
				}
			}
		}
		preds := fuseDateRanges(relPreds[i])
		var p exec.Pred
		if len(preds) == 1 {
			p = preds[0]
		} else if len(preds) > 1 {
			p = exec.AndOf(preds...)
		}
		nodes[i] = &plan.Scan{Table: rels[i].table, Columns: colsSel, Pred: p}
	}

	var node plan.Node = &plan.HashJoin{
		Kind: plan.LeftCount, Build: nodes[1], Probe: nodes[0],
		BuildKeys: []string{buildKey}, ProbeKeys: []string{probeKey}, CountAs: countAlias,
	}
	node = &plan.Project{Input: node, Cols: post}
	node, err := pl.orderLimit(b, node, outCols)
	if err != nil {
		return nil, blockOut{}, err
	}
	rows := pl.st.tableRows(rels[0].table)
	if rows < 1 {
		rows = 1
	}
	return node, blockOut{cols: outCols, ukey: outUkey, rows: rows}, nil
}

// groupNames returns the GROUP BY key names.
func groupNames(b *SelectBlock) []string {
	out := make([]string, len(b.GroupBy))
	for i, g := range b.GroupBy {
		out[i] = g.Name
	}
	return out
}
