// Package sql is the declarative frontend of the WimPi engine: a
// stdlib-only lexer, recursive-descent parser, catalog binder, and
// planner that lowers SQL text to internal/plan trees, plus a
// cost-based optimizer that prices join orders with the hardware model.
//
// The dialect covers what TPC-H needs: SELECT/FROM/WHERE/LEFT JOIN/
// GROUP BY/HAVING/ORDER BY/LIMIT, WITH common table expressions,
// derived tables, IN/NOT IN (list and subquery), scalar subqueries,
// BETWEEN, LIKE/NOT LIKE, CASE WHEN, date literals and intervals,
// year()/extract(year), and substring(col, 1, n).
//
// Lowering is canonical and deterministic: the first FROM item is the
// probe spine and later items attach as hash-join builds in text order,
// so a query's FROM clause reads like its pipeline. The optimizer then
// permutes attachments only where the result is provably byte-identical
// (see optimize.go), pricing candidates with hardware.OperatorTime from
// catalog statistics — never from worker count — so plans are identical
// across parallelism levels and cluster re-dispatches.
package sql

import "fmt"

// kind enumerates token kinds.
type kind int

const (
	tEOF kind = iota
	tIdent
	tNumber // integer or decimal literal
	tString // 'single quoted'
	tSymbol // punctuation and operators: ( ) , * / + - = <> < <= > >= .
	tKeyword
)

func (k kind) String() string {
	switch k {
	case tEOF:
		return "end of input"
	case tIdent:
		return "identifier"
	case tNumber:
		return "number"
	case tString:
		return "string"
	case tSymbol:
		return "symbol"
	case tKeyword:
		return "keyword"
	}
	return "token"
}

// Pos is a 1-based line:column source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// token is one lexed token. Text is the canonical form: keywords are
// lowercased, string literals hold the unquoted value.
type token struct {
	kind kind
	text string
	pos  Pos
}

// keywords lists the dialect's reserved words (lowercase).
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"by": true, "having": true, "order": true, "limit": true,
	"as": true, "and": true, "or": true, "not": true, "in": true,
	"like": true, "between": true, "case": true, "when": true,
	"then": true, "else": true, "end": true, "asc": true, "desc": true,
	"date": true, "interval": true, "year": true, "month": true,
	"day": true, "with": true, "left": true, "join": true, "on": true,
	"sum": true, "count": true, "avg": true, "min": true, "max": true,
	"substring": true, "extract": true, "distinct": true,
}

// Error is a positioned frontend diagnostic (lexer, parser, or binder).
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql:%s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
