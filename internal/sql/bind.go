package sql

import (
	"wimpi/internal/colstore"
	"wimpi/internal/hardware"
	"wimpi/internal/plan"
)

// colInfo is one output column of a relation or block.
type colInfo struct {
	Name string
	Type colstore.Type
}

// relInfo is the bound form of one FROM item: its visible columns, an
// optional unique key (base-table metadata, or the GROUP BY keys of a
// derived block), and where it came from.
type relInfo struct {
	name  string // alias, or the table/CTE name
	cols  []colInfo
	ukey  []string
	table string       // base table name ("" otherwise)
	cte   *cteInfo     // non-nil for CTE references
	sub   *SelectBlock // non-nil for derived tables
	item  *FromItem
}

// cteInfo is one lowered WITH entry. The memo node is shared by every
// reference so the CTE executes once per query run.
type cteInfo struct {
	name string
	cols []colInfo
	ukey []string
	memo *memoNode
	rows float64
}

// colBind locates a column in a block scope.
type colBind struct {
	typ colstore.Type
	rel int // index into the block's relations
}

// scope maps visible column names to their binding. The dialect has no
// qualified names: every column name must be unique across the FROM
// clause (TPC-H prefixes guarantee it), and binding errors out
// otherwise.
type scope map[string]colBind

// planner lowers parsed statements against a catalog.
type planner struct {
	cat   plan.Catalog
	keys  map[string][]string // base table -> unique key columns
	ctes  map[string]*cteInfo
	st    *stats
	opt   bool
	rep   *Report
	model hardware.Model
	pi    hardware.Profile
	llc   int64 // resolved LLC bytes for strategy prediction
}

// bindFrom resolves the FROM items of a block into relations and a
// combined scope.
func (pl *planner) bindFrom(b *SelectBlock) ([]relInfo, scope, error) {
	if len(b.From) == 0 {
		return nil, nil, errAt(b.Pos, "select needs a FROM clause")
	}
	rels := make([]relInfo, 0, len(b.From))
	sc := scope{}
	for i := range b.From {
		f := &b.From[i]
		var r relInfo
		r.item = f
		switch {
		case f.Sub != nil:
			cols, ukey, err := pl.blockSchema(f.Sub)
			if err != nil {
				return nil, nil, err
			}
			r = relInfo{name: f.Alias, cols: cols, ukey: ukey, sub: f.Sub, item: f}
		case f.Table != "":
			if c, ok := pl.ctes[f.Table]; ok {
				r = relInfo{name: f.Table, cols: c.cols, ukey: c.ukey, cte: c, item: f}
			} else {
				t, err := pl.cat.Table(f.Table)
				if err != nil {
					return nil, nil, errAt(f.Pos, "unknown table %q", f.Table)
				}
				cols := make([]colInfo, len(t.Schema))
				for j, fd := range t.Schema {
					cols[j] = colInfo{Name: fd.Name, Type: fd.Type}
				}
				r = relInfo{name: f.Table, cols: cols, ukey: pl.keys[f.Table], table: f.Table, item: f}
			}
			if f.Alias != "" {
				r.name = f.Alias
			}
		}
		for _, c := range r.cols {
			if prev, ok := sc[c.Name]; ok {
				return nil, nil, errAt(f.Pos, "column %q of %s is ambiguous (also in %s)",
					c.Name, r.name, rels[prev.rel].name)
			}
			sc[c.Name] = colBind{typ: c.Type, rel: i}
		}
		rels = append(rels, r)
	}
	return rels, sc, nil
}

// blockSchema resolves a block's output columns and unique key without
// building a plan. It reports the same binder diagnostics as lowering.
func (pl *planner) blockSchema(b *SelectBlock) ([]colInfo, []string, error) {
	rels, sc, err := pl.bindFrom(b)
	if err != nil {
		return nil, nil, err
	}
	_ = rels
	cols := make([]colInfo, 0, len(b.Items))
	for i := range b.Items {
		it := &b.Items[i]
		name := it.Alias
		if name == "" {
			cr, ok := it.Expr.(*ColRef)
			if !ok {
				return nil, nil, errAt(it.Pos, "select expression needs an alias (use AS)")
			}
			name = cr.Name
		}
		typ, err := pl.typeOf(it.Expr, sc, true, false)
		if err != nil {
			return nil, nil, err
		}
		for _, prev := range cols {
			if prev.Name == name {
				return nil, nil, errAt(it.Pos, "duplicate output column %q", name)
			}
		}
		cols = append(cols, colInfo{Name: name, Type: typ})
	}
	var ukey []string
	if len(b.GroupBy) > 0 {
		ukey = make([]string, 0, len(b.GroupBy))
		for _, g := range b.GroupBy {
			found := false
			for i := range b.Items {
				if outName(&b.Items[i]) == g.Name {
					found = true
					break
				}
			}
			if !found {
				return nil, nil, errAt(g.Pos, "GROUP BY column %q is not in the select list", g.Name)
			}
			ukey = append(ukey, g.Name)
		}
	}
	return cols, ukey, nil
}

// outName is the output column name of a select item.
func outName(it *SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*ColRef); ok {
		return cr.Name
	}
	return ""
}

// typeOf type-checks an expression against a scope. allowAgg permits
// aggregate calls at this level; inAgg marks that we are already inside
// an aggregate argument, where further aggregates are an error.
func (pl *planner) typeOf(e Expr, sc scope, allowAgg, inAgg bool) (colstore.Type, error) {
	switch ex := e.(type) {
	case *ColRef:
		b, ok := sc[ex.Name]
		if !ok {
			return 0, errAt(ex.Pos, "unknown column %q", ex.Name)
		}
		return b.typ, nil
	case *NumLit:
		if ex.IsInt {
			return colstore.Int64, nil
		}
		return colstore.Float64, nil
	case *StrLit:
		return colstore.String, nil
	case *DateLit:
		if _, err := colstore.ParseDate(ex.V); err != nil {
			return 0, errAt(ex.Pos, "bad date literal %q", ex.V)
		}
		return colstore.Date, nil
	case *IntervalLit:
		return 0, errAt(ex.Pos, "interval literal is only valid in date arithmetic")
	case *BinExpr:
		switch ex.Op {
		case "and", "or":
			for _, side := range []Expr{ex.L, ex.R} {
				t, err := pl.typeOf(side, sc, allowAgg, inAgg)
				if err != nil {
					return 0, err
				}
				if t != colstore.Bool {
					return 0, errAt(side.pos(), "%s needs boolean operands, got %s", ex.Op, t)
				}
			}
			return colstore.Bool, nil
		case "=", "<>", "<", "<=", ">", ">=":
			lt, err := pl.typeOf(ex.L, sc, allowAgg, inAgg)
			if err != nil {
				return 0, err
			}
			rt, err := pl.typeOf(ex.R, sc, allowAgg, inAgg)
			if err != nil {
				return 0, err
			}
			if !comparable2(lt, rt) {
				return 0, errAt(ex.Pos, "type mismatch: cannot compare %s and %s", lt, rt)
			}
			return colstore.Bool, nil
		default: // + - * /
			if t, ok, err := pl.dateArithType(ex); ok {
				return t, err
			}
			for _, side := range []Expr{ex.L, ex.R} {
				t, err := pl.typeOf(side, sc, allowAgg, inAgg)
				if err != nil {
					return 0, err
				}
				if t != colstore.Int64 && t != colstore.Float64 {
					return 0, errAt(side.pos(), "arithmetic needs numeric operands, got %s", t)
				}
			}
			return colstore.Float64, nil
		}
	case *NotExpr:
		t, err := pl.typeOf(ex.E, sc, allowAgg, inAgg)
		if err != nil {
			return 0, err
		}
		if t != colstore.Bool {
			return 0, errAt(ex.Pos, "not needs a boolean operand, got %s", t)
		}
		return colstore.Bool, nil
	case *InExpr:
		t, err := pl.typeOf(ex.E, sc, allowAgg, inAgg)
		if err != nil {
			return 0, err
		}
		if ex.Sub != nil {
			subCols, _, err := pl.subquerySchema(ex.Sub)
			if err != nil {
				return 0, err
			}
			if len(subCols) != 1 {
				return 0, errAt(ex.Pos, "IN subquery must select exactly one column")
			}
			if !comparable2(t, subCols[0].Type) {
				return 0, errAt(ex.Pos, "type mismatch: cannot compare %s and %s", t, subCols[0].Type)
			}
			return colstore.Bool, nil
		}
		for _, v := range ex.List {
			vt, err := pl.typeOf(v, sc, false, inAgg)
			if err != nil {
				return 0, err
			}
			if !comparable2(t, vt) {
				return 0, errAt(v.pos(), "type mismatch: cannot compare %s and %s", t, vt)
			}
		}
		return colstore.Bool, nil
	case *BetweenExpr:
		t, err := pl.typeOf(ex.E, sc, allowAgg, inAgg)
		if err != nil {
			return 0, err
		}
		for _, side := range []Expr{ex.Lo, ex.Hi} {
			st, err := pl.typeOf(side, sc, false, inAgg)
			if err != nil {
				return 0, err
			}
			if !comparable2(t, st) {
				return 0, errAt(side.pos(), "type mismatch: cannot compare %s and %s", t, st)
			}
		}
		return colstore.Bool, nil
	case *LikeExpr:
		t, err := pl.typeOf(ex.E, sc, allowAgg, inAgg)
		if err != nil {
			return 0, err
		}
		if t != colstore.String {
			return 0, errAt(ex.Pos, "like needs a string operand, got %s", t)
		}
		return colstore.Bool, nil
	case *CaseExpr:
		wt, err := pl.typeOf(ex.When, sc, allowAgg, inAgg)
		if err != nil {
			return 0, err
		}
		if wt != colstore.Bool {
			return 0, errAt(ex.When.pos(), "case condition must be boolean, got %s", wt)
		}
		for _, side := range []Expr{ex.Then, ex.Else} {
			t, err := pl.typeOf(side, sc, allowAgg, inAgg)
			if err != nil {
				return 0, err
			}
			if t != colstore.Int64 && t != colstore.Float64 {
				return 0, errAt(side.pos(), "case branches must be numeric, got %s", t)
			}
		}
		return colstore.Float64, nil
	case *FuncExpr:
		switch ex.Name {
		case "sum", "avg", "min", "max", "count", "sumi":
			if inAgg {
				return 0, errAt(ex.Pos, "aggregate function %s() cannot be nested inside another aggregate", ex.Name)
			}
			if !allowAgg {
				return 0, errAt(ex.Pos, "aggregate function %s() is not allowed here", ex.Name)
			}
			if ex.Name == "count" {
				if len(ex.Args) > 1 {
					return 0, errAt(ex.Pos, "count() takes at most one argument")
				}
				if len(ex.Args) == 1 {
					if _, err := pl.typeOf(ex.Args[0], sc, false, true); err != nil {
						return 0, err
					}
				}
				return colstore.Int64, nil
			}
			if len(ex.Args) != 1 {
				return 0, errAt(ex.Pos, "%s() takes exactly one argument", ex.Name)
			}
			t, err := pl.typeOf(ex.Args[0], sc, false, true)
			if err != nil {
				return 0, err
			}
			if t != colstore.Int64 && t != colstore.Float64 {
				return 0, errAt(ex.Args[0].pos(), "%s() needs a numeric argument, got %s", ex.Name, t)
			}
			if ex.Name == "sumi" {
				if t != colstore.Int64 {
					return 0, errAt(ex.Args[0].pos(), "sumi() needs an int argument, got %s", t)
				}
				return colstore.Int64, nil
			}
			return colstore.Float64, nil
		case "year":
			if len(ex.Args) != 1 {
				return 0, errAt(ex.Pos, "year() takes exactly one argument")
			}
			t, err := pl.typeOf(ex.Args[0], sc, allowAgg, inAgg)
			if err != nil {
				return 0, err
			}
			if t != colstore.Date {
				return 0, errAt(ex.Args[0].pos(), "year() needs a date argument, got %s", t)
			}
			return colstore.Int64, nil
		case "substring":
			if len(ex.Args) != 3 {
				return 0, errAt(ex.Pos, "substring() takes (column, start, length)")
			}
			t, err := pl.typeOf(ex.Args[0], sc, false, inAgg)
			if err != nil {
				return 0, err
			}
			if t != colstore.String {
				return 0, errAt(ex.Args[0].pos(), "substring() needs a string column, got %s", t)
			}
			if _, ok := ex.Args[0].(*ColRef); !ok {
				return 0, errAt(ex.Args[0].pos(), "substring() needs a plain column reference")
			}
			one, ok1 := ex.Args[1].(*NumLit)
			n, ok2 := ex.Args[2].(*NumLit)
			if !ok1 || !ok2 || !one.IsInt || !n.IsInt || one.Int != 1 || n.Int < 1 {
				return 0, errAt(ex.Pos, "substring() supports only substring(col, 1, n) prefixes")
			}
			return colstore.String, nil
		}
		return 0, errAt(ex.Pos, "unknown function %q", ex.Name)
	case *SubqueryExpr:
		subCols, _, err := pl.subquerySchema(ex.Sel)
		if err != nil {
			return 0, err
		}
		if len(subCols) != 1 {
			return 0, errAt(ex.Pos, "scalar subquery must select exactly one column")
		}
		return colstore.Float64, nil
	}
	return 0, errAt(e.pos(), "unsupported expression")
}

// dateArithType recognizes date +/- interval arithmetic, which is typed
// as a date rather than a float. It must run before the generic numeric
// arithmetic check because bare interval literals are otherwise errors.
func (pl *planner) dateArithType(ex *BinExpr) (colstore.Type, bool, error) {
	if ex.Op != "+" && ex.Op != "-" {
		return 0, false, nil
	}
	if _, ok := ex.R.(*IntervalLit); !ok {
		return 0, false, nil
	}
	if _, ok, err := foldDate(ex); ok {
		return colstore.Date, true, err
	}
	return 0, true, errAt(ex.Pos, "date arithmetic needs a date literal on the left of the interval")
}

// subquerySchema resolves a subquery block's output schema.
func (pl *planner) subquerySchema(b *SelectBlock) ([]colInfo, []string, error) {
	return pl.blockSchema(b)
}

// comparable2 reports whether two types can be compared. Int and float
// compare (counts against literals, int columns against float
// thresholds); everything else needs matching types.
func comparable2(a, b colstore.Type) bool {
	if a == b {
		return true
	}
	num := func(t colstore.Type) bool { return t == colstore.Int64 || t == colstore.Float64 }
	return num(a) && num(b)
}
