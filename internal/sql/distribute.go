package sql

import (
	"fmt"
)

// DistSQL is the distributed decomposition of one SQL statement under
// the cluster layout (lineitem partitioned on l_orderkey, every other
// table replicated): a partial statement every node runs over its
// partition, plus a merge statement the coordinator runs over the
// concatenated partials, exposed as a table named "partials". The
// decomposition is purely textual — both halves go back through Plan on
// whichever node executes them, so a re-dispatched partition plans from
// exactly the same text (and, the optimizer being catalog-dependent and
// worker-independent, makes exactly the same choices) as its home node.
type DistSQL struct {
	// Partial is the per-node statement. For single-node statements it
	// is the original text unchanged.
	Partial string
	// Merge is the coordinator statement over the table "partials";
	// empty when SingleNode.
	Merge string
	// SingleNode marks statements that never touch the partitioned
	// lineitem table and therefore run on one node only (Q13).
	SingleNode bool
}

// Distribute splits a SQL statement into per-node partial and
// coordinator merge statements. The rewrite moves ORDER BY / LIMIT to
// the merge side and splits every aggregate so partials re-aggregate
// correctly: sum re-sums, count becomes sumi, min/max re-apply, and avg
// splits into a hidden sum + count pair recombined at merge.
//
// Correctness rests on the cluster layout invariant the hand-built
// distributed plans also rely on: any grouping or semi-join against
// lineitem is local to one partition (lineitem is partitioned by
// l_orderkey and an order's lines never straddle nodes), so per-node
// group partials are disjoint-or-mergeable and re-aggregation over the
// concatenation equals aggregation over the union.
func Distribute(text string) (*DistSQL, error) {
	stmt, err := Parse(text)
	if err != nil {
		return nil, err
	}
	if !stmtReferencesTable(stmt, "lineitem") {
		// Nothing partitioned is involved: ship the statement to one
		// node verbatim and return its result as-is.
		return &DistSQL{Partial: text, SingleNode: true}, nil
	}
	if len(stmt.CTEs) > 0 {
		return nil, errAt(stmt.CTEs[0].Pos, "WITH clauses are not distributable")
	}
	b := stmt.Sel
	if b.Having != nil {
		return nil, errAt(b.Having.pos(), "HAVING is not distributable")
	}
	for i := range b.From {
		if b.From[i].JoinLeft {
			return nil, errAt(b.From[i].Pos, "left join over the partitioned table is not distributable")
		}
	}

	keys := map[string]bool{}
	for _, g := range b.GroupBy {
		keys[g.Name] = true
	}

	partial := &SelectBlock{
		From:    b.From,
		Where:   b.Where,
		GroupBy: b.GroupBy,
		Limit:   -1,
		Pos:     b.Pos,
	}
	merge := &SelectBlock{
		From:    []FromItem{{Table: "partials", Pos: b.Pos}},
		GroupBy: b.GroupBy,
		OrderBy: b.OrderBy,
		Limit:   b.Limit,
		Pos:     b.Pos,
	}

	for i := range b.Items {
		it := &b.Items[i]
		name := outName(it)
		if keys[name] {
			// Group keys pass through the partial under their output
			// name; the merge regroups on them.
			partial.Items = append(partial.Items, *it)
			merge.Items = append(merge.Items, SelectItem{
				Expr: &ColRef{Name: name, Pos: it.Pos}, Pos: it.Pos,
			})
			continue
		}
		if !containsAgg(it.Expr) {
			return nil, errAt(it.Pos, "select item %q has no aggregate and is not a group key; cannot distribute", name)
		}
		hidden := 0
		mergeExpr, err := splitAggExpr(it.Expr, name, &hidden, &partial.Items)
		if err != nil {
			return nil, err
		}
		merge.Items = append(merge.Items, SelectItem{Expr: mergeExpr, Alias: name, Pos: it.Pos})
	}

	d := &DistSQL{
		Partial: (&Stmt{Sel: partial}).String(),
		Merge:   (&Stmt{Sel: merge}).String(),
	}
	// Both halves must survive a reparse — a rewrite the printer cannot
	// round-trip would fail on the worker, far from the cause.
	for _, half := range []string{d.Partial, d.Merge} {
		if _, err := Parse(half); err != nil {
			return nil, fmt.Errorf("sql: distributed rewrite does not reparse: %w", err)
		}
	}
	return d, nil
}

// splitAggExpr rewrites one agg-bearing select expression for two-phase
// aggregation. Every aggregate call becomes one or two partial-side
// columns (appended to partialItems), and the returned expression
// computes the original item from re-aggregations of those columns on
// the merge side.
func splitAggExpr(e Expr, item string, hidden *int, partialItems *[]SelectItem) (Expr, error) {
	switch ex := e.(type) {
	case *FuncExpr:
		if !isAggName(ex.Name) {
			break
		}
		name := func() string {
			n := fmt.Sprintf("%s__p%d", item, *hidden)
			*hidden++
			return n
		}
		reagg := func(fn, col string) *FuncExpr {
			return &FuncExpr{Name: fn, Args: []Expr{&ColRef{Name: col, Pos: ex.Pos}}, Pos: ex.Pos}
		}
		switch ex.Name {
		case "sum", "min", "max":
			// sum/min/max re-apply over the per-node values.
			p := name()
			*partialItems = append(*partialItems, SelectItem{Expr: ex, Alias: p, Pos: ex.Pos})
			fn := ex.Name
			return reagg(fn, p), nil
		case "count":
			// Per-node counts are ints; they add with the integer sum.
			p := name()
			*partialItems = append(*partialItems, SelectItem{Expr: ex, Alias: p, Pos: ex.Pos})
			return reagg("sumi", p), nil
		case "sumi":
			p := name()
			*partialItems = append(*partialItems, SelectItem{Expr: ex, Alias: p, Pos: ex.Pos})
			return reagg("sumi", p), nil
		case "avg":
			// avg of avgs is wrong under skewed partitions: split into a
			// hidden sum + count pair and recombine at merge.
			ps, pc := name(), name()
			*partialItems = append(*partialItems,
				SelectItem{Expr: &FuncExpr{Name: "sum", Args: ex.Args, Pos: ex.Pos}, Alias: ps, Pos: ex.Pos},
				SelectItem{Expr: &FuncExpr{Name: "count", Pos: ex.Pos}, Alias: pc, Pos: ex.Pos},
			)
			return &BinExpr{Op: "/", L: reagg("sum", ps), R: reagg("sumi", pc), Pos: ex.Pos}, nil
		}
	case *BinExpr:
		l, err := splitAggExpr(ex.L, item, hidden, partialItems)
		if err != nil {
			return nil, err
		}
		r, err := splitAggExpr(ex.R, item, hidden, partialItems)
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: ex.Op, L: l, R: r, Pos: ex.Pos}, nil
	case *NumLit:
		return ex, nil
	case *ColRef, *StrLit, *DateLit, *IntervalLit, *CaseExpr, *NotExpr,
		*InExpr, *BetweenExpr, *LikeExpr, *SubqueryExpr:
		// Not arithmetic over aggregates; fall through to the error.
	}
	return nil, errAt(e.pos(), "unsupported expression around an aggregate in a distributed statement")
}

// stmtReferencesTable reports whether any FROM item or subquery in the
// statement reads the named base table.
func stmtReferencesTable(s *Stmt, table string) bool {
	for i := range s.CTEs {
		if blockReferencesTable(s.CTEs[i].Sel, table) {
			return true
		}
	}
	return blockReferencesTable(s.Sel, table)
}

func blockReferencesTable(b *SelectBlock, table string) bool {
	for i := range b.From {
		f := &b.From[i]
		if f.Table == table {
			return true
		}
		if f.Sub != nil && blockReferencesTable(f.Sub, table) {
			return true
		}
	}
	for _, e := range []Expr{b.Where, b.Having} {
		if e != nil && exprReferencesTable(e, table) {
			return true
		}
	}
	for i := range b.Items {
		if exprReferencesTable(b.Items[i].Expr, table) {
			return true
		}
	}
	return false
}

// exprReferencesTable descends into IN and scalar subqueries; other
// expression forms cannot name tables.
func exprReferencesTable(e Expr, table string) bool {
	switch ex := e.(type) {
	case *InExpr:
		if ex.Sub != nil && blockReferencesTable(ex.Sub, table) {
			return true
		}
		return exprReferencesTable(ex.E, table)
	case *SubqueryExpr:
		return blockReferencesTable(ex.Sel, table)
	case *BinExpr:
		return exprReferencesTable(ex.L, table) || exprReferencesTable(ex.R, table)
	case *NotExpr:
		return exprReferencesTable(ex.E, table)
	case *BetweenExpr:
		return exprReferencesTable(ex.E, table) || exprReferencesTable(ex.Lo, table) || exprReferencesTable(ex.Hi, table)
	case *CaseExpr:
		return exprReferencesTable(ex.When, table) || exprReferencesTable(ex.Then, table) || exprReferencesTable(ex.Else, table)
	case *LikeExpr:
		return exprReferencesTable(ex.E, table)
	case *FuncExpr:
		for _, a := range ex.Args {
			if exprReferencesTable(a, table) {
				return true
			}
		}
	case *ColRef, *NumLit, *StrLit, *DateLit, *IntervalLit:
		// Leaves name columns, never tables.
	}
	return false
}
