package sql

import (
	"fmt"
	"strings"

	"wimpi/internal/colstore"
	"wimpi/internal/plan"
)

// memoNode executes its input once per query run and serves the
// materialized table to every consumer — the plan-layer form of a WITH
// common table expression referenced more than once. Plan trees execute
// single-threaded at this level (parallelism lives inside operators),
// so no locking is needed.
type memoNode struct {
	name  string
	inner plan.Node
	t     *colstore.Table
}

// Execute implements plan.Node.
func (m *memoNode) Execute(ctx *plan.Context) (*colstore.Table, error) {
	if m.t == nil {
		t, err := m.inner.Execute(ctx)
		if err != nil {
			return nil, err
		}
		m.t = t
	}
	return m.t, nil
}

// Explain implements plan.Node.
func (m *memoNode) Explain(depth int) string {
	pad := strings.Repeat("  ", depth)
	return pad + "cte " + m.name + " (memoized)\n" + m.inner.Explain(depth+1)
}

// Children implements plan.ChildNodes, so plan-tree walks (notably the
// spill-capability scan behind memory budgets) see through the memo.
func (m *memoNode) Children() []plan.Node { return []plan.Node{m.inner} }

// scalarPlan is one scalar subquery: a plan whose result is a single
// row with the scalar in its only column.
type scalarPlan struct {
	node plan.Node
}

// scalarOf extracts the single numeric value of a one-row result.
// Counts (Int64s) convert exactly to float64.
func scalarOf(t *colstore.Table) (float64, error) {
	if t.NumRows() != 1 || t.NumCols() != 1 {
		return 0, fmt.Errorf("sql: scalar subquery returned %dx%d, want 1x1", t.NumRows(), t.NumCols())
	}
	switch c := t.Cols[0].(type) {
	case *colstore.Float64s:
		return c.V[0], nil
	case *colstore.Int64s:
		return float64(c.V[0]), nil
	}
	return 0, fmt.Errorf("sql: scalar subquery column is not numeric")
}

// deferredNode handles scalar subqueries: it executes the subquery
// plans first, folds their values into the enclosing block's
// comparison predicates as constants, and only then builds and runs
// the block's plan — the same imperative shape as the engine's
// hand-built funcNode queries.
type deferredNode struct {
	name    string
	scalars []scalarPlan
	build   func(vals []float64) (plan.Node, error)
	// cached built node for Explain before execution; nil until run.
	built plan.Node
}

// Execute implements plan.Node.
func (d *deferredNode) Execute(ctx *plan.Context) (*colstore.Table, error) {
	vals := make([]float64, len(d.scalars))
	for i := range d.scalars {
		t, err := d.scalars[i].node.Execute(ctx)
		if err != nil {
			return nil, err
		}
		v, err := scalarOf(t)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	n, err := d.build(vals)
	if err != nil {
		return nil, err
	}
	d.built = n
	return n.Execute(ctx)
}

// Children implements plan.ChildNodes: the scalar subquery plans, plus
// the built block when available. Before execution the block does not
// exist yet, so capability scans (e.g. spill) see only the scalars —
// conservative, since an unseen join keeps MemLimitError semantics.
func (d *deferredNode) Children() []plan.Node {
	out := make([]plan.Node, 0, len(d.scalars)+1)
	for i := range d.scalars {
		out = append(out, d.scalars[i].node)
	}
	if d.built != nil {
		out = append(out, d.built)
	}
	return out
}

// Explain implements plan.Node.
func (d *deferredNode) Explain(depth int) string {
	pad := strings.Repeat("  ", depth)
	out := pad + d.name + "\n"
	for i := range d.scalars {
		out += pad + fmt.Sprintf("  scalar[%d]:\n", i) + d.scalars[i].node.Explain(depth+2)
	}
	if d.built != nil {
		out += d.built.Explain(depth + 1)
	}
	return out
}
