package sql_test

import (
	"fmt"
	"sync"
	"testing"

	"wimpi/internal/colstore"
	"wimpi/internal/engine"
	"wimpi/internal/plan"
	"wimpi/internal/sql"
	"wimpi/internal/tpch"
)

var (
	fixtureOnce sync.Once
	fixtureData *tpch.Dataset
)

// fixture generates one SF 0.01 dataset for the whole test binary.
func fixture() *tpch.Dataset {
	fixtureOnce.Do(func() {
		fixtureData = tpch.Generate(tpch.Config{SF: 0.01, Seed: 42})
	})
	return fixtureData
}

var execModes = []struct {
	name string
	mode plan.ExecMode
}{
	{"vector", plan.ExecVector},
	{"fused", plan.ExecFused},
	{"auto", plan.ExecAuto},
}

// planSQL compiles query q's SQL text against db with the standard
// options, failing the test on any planning error.
func planSQL(t *testing.T, db *engine.DB, q int) *sql.Planned {
	t.Helper()
	text, err := tpch.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sql.Plan(db, text, sql.Options{UniqueKeys: tpch.TableKeys()})
	if err != nil {
		t.Fatalf("Q%d: plan: %v\nsql:%s", q, err, text)
	}
	return pl
}

// TestSQLMatchesHandBuilt proves the frontend end to end: every TPC-H
// query expressed as SQL text must produce output byte-identical to the
// hand-built plan tree, at every worker count and execution strategy.
// Byte-identical means same shape, same column names in order, and same
// values — including float bit patterns (colstore.TablesIdentical).
func TestSQLMatchesHandBuilt(t *testing.T) {
	data := fixture()
	workerCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		workerCounts = []int{1, 4}
	}
	for _, workers := range workerCounts {
		for _, em := range execModes {
			db := engine.NewDB(engine.Config{Workers: workers, Exec: em.mode})
			data.RegisterAll(db)
			for q := 1; q <= 22; q++ {
				q := q
				t.Run(fmt.Sprintf("w%d/%s/Q%d", workers, em.name, q), func(t *testing.T) {
					want, err := db.Run(tpch.MustQuery(q))
					if err != nil {
						t.Fatalf("hand-built: %v", err)
					}
					// Plan fresh per run: CTE memoization is per Plan call.
					pl := planSQL(t, db, q)
					got, err := db.Run(pl.Node)
					if err != nil {
						t.Fatalf("sql plan: %v\nplan:\n%s", err, pl.Node.Explain(0))
					}
					if ok, diff := colstore.TablesIdentical(got.Table, want.Table); !ok {
						t.Fatalf("Q%d: SQL result differs from hand-built: %s\nsql plan:\n%s",
							q, diff, pl.Node.Explain(0))
					}
				})
			}
		}
	}
}
