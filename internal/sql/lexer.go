package sql

import "strings"

// lexer tokenizes SQL text. It never panics on any input: malformed
// input yields a positioned error.
type lexer struct {
	src  string
	off  int // byte offset
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// lex tokenizes the whole input up front. Any error aborts lexing.
func lex(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tEOF {
			return out, nil
		}
	}
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// advance consumes n bytes, tracking line/column.
func (lx *lexer) advance(n int) {
	for i := 0; i < n && lx.off < len(lx.src); i++ {
		if lx.src[lx.off] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.off++
	}
}

func (lx *lexer) peek(i int) byte {
	if lx.off+i < len(lx.src) {
		return lx.src[lx.off+i]
	}
	return 0
}

func isSpace(b byte) bool  { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }
func isDigit(b byte) bool  { return b >= '0' && b <= '9' }
func isLetter(b byte) bool { return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') }

// next returns the next token.
func (lx *lexer) next() (token, error) {
	// Skip whitespace and -- line comments.
	for {
		for lx.off < len(lx.src) && isSpace(lx.src[lx.off]) {
			lx.advance(1)
		}
		if lx.peek(0) == '-' && lx.peek(1) == '-' {
			for lx.off < len(lx.src) && lx.src[lx.off] != '\n' {
				lx.advance(1)
			}
			continue
		}
		break
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return token{kind: tEOF, pos: pos}, nil
	}
	b := lx.src[lx.off]
	switch {
	case isLetter(b):
		start := lx.off
		for lx.off < len(lx.src) && (isLetter(lx.src[lx.off]) || isDigit(lx.src[lx.off])) {
			lx.advance(1)
		}
		word := lx.src[start:lx.off]
		lower := strings.ToLower(word)
		if keywords[lower] {
			return token{kind: tKeyword, text: lower, pos: pos}, nil
		}
		return token{kind: tIdent, text: lower, pos: pos}, nil
	case isDigit(b), b == '.' && isDigit(lx.peek(1)):
		start := lx.off
		for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
			lx.advance(1)
		}
		if lx.peek(0) == '.' && isDigit(lx.peek(1)) {
			lx.advance(1)
			for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
				lx.advance(1)
			}
		}
		return token{kind: tNumber, text: lx.src[start:lx.off], pos: pos}, nil
	case b == '\'':
		lx.advance(1)
		var sb strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return token{}, errAt(pos, "unterminated string literal")
			}
			c := lx.src[lx.off]
			if c == '\'' {
				if lx.peek(1) == '\'' { // escaped quote
					sb.WriteByte('\'')
					lx.advance(2)
					continue
				}
				lx.advance(1)
				return token{kind: tString, text: sb.String(), pos: pos}, nil
			}
			sb.WriteByte(c)
			lx.advance(1)
		}
	case b == '<':
		if lx.peek(1) == '>' || lx.peek(1) == '=' {
			sym := lx.src[lx.off : lx.off+2]
			lx.advance(2)
			return token{kind: tSymbol, text: sym, pos: pos}, nil
		}
		lx.advance(1)
		return token{kind: tSymbol, text: "<", pos: pos}, nil
	case b == '>':
		if lx.peek(1) == '=' {
			lx.advance(2)
			return token{kind: tSymbol, text: ">=", pos: pos}, nil
		}
		lx.advance(1)
		return token{kind: tSymbol, text: ">", pos: pos}, nil
	case b == '!':
		if lx.peek(1) == '=' {
			lx.advance(2)
			// Normalized to the dialect's canonical not-equal spelling.
			return token{kind: tSymbol, text: "<>", pos: pos}, nil
		}
		return token{}, errAt(pos, "unexpected character %q", string(b))
	case strings.IndexByte("()*,+-/=.", b) >= 0:
		lx.advance(1)
		return token{kind: tSymbol, text: string(b), pos: pos}, nil
	default:
		return token{}, errAt(pos, "unexpected character %q", string(b))
	}
}
