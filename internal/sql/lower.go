package sql

import (
	"errors"
	"fmt"
	"sort"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
	"wimpi/internal/plan"
)

// blockOut describes a lowered block's output for enclosing blocks: its
// schema, unique key (if any), and estimated cardinality.
type blockOut struct {
	cols []colInfo
	ukey []string
	rows float64
}

// stepKind classifies one pipeline step applied to a block's spine.
type stepKind uint8

const (
	// stepInner attaches a relation as a hash-join build side.
	stepInner stepKind = iota
	// stepSemi keeps spine rows with a match in an IN subquery.
	stepSemi
	// stepAnti keeps spine rows without a match in a NOT IN subquery.
	stepAnti
	// stepResidual filters the joined rows with a predicate.
	stepResidual
	// stepProjCmp filters on a comparison of two computed expressions,
	// materialized by a projection first.
	stepProjCmp
)

// step is one operation applied to the spine, in canonical text order.
// The optimizer may permute steps within byte-safe windows; the fields
// beyond the operator itself feed the cost model and the legality check.
type step struct {
	kind  stepKind
	pos   int // index of the defining WHERE conjunct (canonical order)
	label string

	rel                  int // relation index for stepInner
	buildNode            plan.Node
	buildKeys, probeKeys []string
	unique               bool // build keys form the build side's unique key

	pred exec.Pred // stepResidual

	lExpr, rExpr exec.Expr // stepProjCmp
	cmpOp        exec.CmpOp

	needs     []string // columns that must be available before this step
	provides  []string // columns introduced by this step
	buildRows float64
	buildCols int
	sel       float64 // estimated spine-row retention
}

// lowerBlock lowers one select block to a plan. resolved carries scalar
// subquery values on the second pass of deferred lowering; nil on the
// first pass.
func (pl *planner) lowerBlock(b *SelectBlock, resolved map[*SubqueryExpr]float64) (plan.Node, blockOut, error) {
	outCols, outUkey, err := pl.blockSchema(b)
	if err != nil {
		return nil, blockOut{}, err
	}
	for i := range b.From {
		if b.From[i].JoinLeft && (len(b.From) != 2 || i != 1) {
			return nil, blockOut{}, errAt(b.From[i].Pos, "left join supports exactly two FROM items")
		}
	}
	rels, sc, err := pl.bindFrom(b)
	if err != nil {
		return nil, blockOut{}, err
	}

	// Scalar subqueries defer lowering: run them first, fold the values
	// into constants, then plan the block (the hand-built queries'
	// imperative shape).
	if resolved == nil {
		var subs []*SubqueryExpr
		for _, e := range []Expr{b.Where, b.Having} {
			if e == nil {
				continue
			}
			for _, c := range flattenAnd(e) {
				subs = collectScalarSubs(c, subs)
			}
		}
		if len(subs) > 0 {
			scalars := make([]scalarPlan, len(subs))
			for i, s := range subs {
				n, _, err := pl.lowerBlock(s.Sel, nil)
				if err != nil {
					return nil, blockOut{}, err
				}
				scalars[i] = scalarPlan{node: n}
			}
			build := func(vals []float64) (plan.Node, error) {
				m := make(map[*SubqueryExpr]float64, len(subs))
				for i, s := range subs {
					m[s] = vals[i]
				}
				n, _, err := pl.lowerBlock(b, m)
				return n, err
			}
			rows := 1024.0
			if rels[0].table != "" {
				rows = pl.st.tableRows(rels[0].table)
			}
			return &deferredNode{name: "select (deferred scalar subqueries)", scalars: scalars, build: build},
				blockOut{cols: outCols, ukey: outUkey, rows: rows}, nil
		}
	}

	if len(b.From) == 2 && b.From[1].JoinLeft {
		return pl.lowerLeftCount(b, rels, sc, outCols, outUkey)
	}

	nrel := len(rels)
	relPreds := make([][]exec.Pred, nrel)
	type wrapT struct {
		neg                bool
		build              plan.Node
		buildKey, probeKey string
	}
	wraps := make([][]wrapT, nrel)
	type edgeT struct {
		pos              int
		nearCol, relCol string
	}
	edges := make([][]edgeT, nrel)
	var steps []step

	var conj []Expr
	if b.Where != nil {
		conj = flattenAnd(b.Where)
	}
	for idx, c := range conj {
		// Second-pass deferred comparisons: the scalar side is now a
		// constant.
		if resolved != nil && len(collectScalarSubs(c, nil)) > 0 {
			cmp, ok := c.(*BinExpr)
			var col *ColRef
			okOp := false
			if ok {
				col, _ = cmp.L.(*ColRef)
				_, okOp = cmpOps[cmp.Op]
			}
			if col == nil || !okOp {
				return nil, blockOut{}, errAt(c.pos(), "scalar subqueries are supported only as `column <cmp> expression`")
			}
			bind, okc := sc[col.Name]
			if !okc {
				return nil, blockOut{}, errAt(col.Pos, "unknown column %q", col.Name)
			}
			if bind.typ != colstore.Float64 {
				return nil, blockOut{}, errAt(col.Pos, "scalar subquery comparison needs a float column, got %s", bind.typ)
			}
			v, err := evalScalar(cmp.R, resolved)
			if err != nil {
				return nil, blockOut{}, err
			}
			relPreds[bind.rel] = append(relPreds[bind.rel], exec.CmpF{Column: col.Name, Op: cmpOps[cmp.Op], V: v})
			continue
		}
		// IN subqueries become semi/anti joins: against the spine as a
		// pipeline step, against any other relation as a wrap of its
		// source.
		if in, ok := c.(*InExpr); ok && in.Sub != nil {
			col, okc := in.E.(*ColRef)
			if !okc {
				return nil, blockOut{}, errAt(in.E.pos(), "IN subquery needs a plain column on the left")
			}
			bind, okb := sc[col.Name]
			if !okb {
				return nil, blockOut{}, errAt(col.Pos, "unknown column %q", col.Name)
			}
			bn, bout, err := pl.lowerBlock(in.Sub, nil)
			if err != nil {
				return nil, blockOut{}, err
			}
			if len(bout.cols) != 1 {
				return nil, blockOut{}, errAt(in.Pos, "IN subquery must select exactly one column")
			}
			if !comparable2(bind.typ, bout.cols[0].Type) {
				return nil, blockOut{}, errAt(in.Pos, "type mismatch: cannot compare %s and %s", bind.typ, bout.cols[0].Type)
			}
			if bind.rel == 0 {
				k, lbl := stepSemi, "semi"
				if in.Negate {
					k, lbl = stepAnti, "anti"
				}
				steps = append(steps, step{
					kind: k, pos: idx, label: fmt.Sprintf("%s(%s)", lbl, col.Name),
					buildNode: bn, buildKeys: []string{bout.cols[0].Name}, probeKeys: []string{col.Name},
					needs: []string{col.Name}, buildRows: bout.rows, buildCols: 1, sel: 0.5,
				})
			} else {
				wraps[bind.rel] = append(wraps[bind.rel], wrapT{neg: in.Negate, build: bn, buildKey: bout.cols[0].Name, probeKey: col.Name})
			}
			continue
		}
		rs := relsOf(c, sc)
		if len(rs) <= 1 {
			r := 0
			if len(rs) == 1 {
				r = rs[0]
			}
			p, err := pl.lowerPred(c, sc)
			if errors.Is(err, errExprCmp) {
				return nil, blockOut{}, errAt(c.pos(), "comparison of computed expressions is supported only between tables")
			}
			if err != nil {
				return nil, blockOut{}, err
			}
			relPreds[r] = append(relPreds[r], p)
			continue
		}
		if a, bcol, ok := colEquality(c, sc); ok {
			later, near, rc := a, bcol.Name, a.Name
			if sc[bcol.Name].rel > sc[a.Name].rel {
				later = bcol
				near, rc = a.Name, bcol.Name
			}
			r := sc[later.Name].rel
			edges[r] = append(edges[r], edgeT{pos: idx, nearCol: near, relCol: rc})
			continue
		}
		p, err := pl.lowerPred(c, sc)
		if errors.Is(err, errExprCmp) {
			cmp := c.(*BinExpr)
			lE, lerr := pl.lowerExpr(cmp.L, sc)
			if lerr != nil {
				return nil, blockOut{}, lerr
			}
			rE, rerr := pl.lowerExpr(cmp.R, sc)
			if rerr != nil {
				return nil, blockOut{}, rerr
			}
			var needs []string
			for _, n := range walkCols(c, nil) {
				needs = dedupAppend(needs, n)
			}
			steps = append(steps, step{
				kind: stepProjCmp, pos: idx, label: "filter " + cmp.String(),
				lExpr: lE, rExpr: rE, cmpOp: cmpOps[cmp.Op], needs: needs, sel: 0.5,
			})
			continue
		}
		if err != nil {
			return nil, blockOut{}, err
		}
		var needs []string
		for _, n := range walkCols(c, nil) {
			needs = dedupAppend(needs, n)
		}
		steps = append(steps, step{kind: stepResidual, pos: idx, label: "filter " + p.String(), pred: p, needs: needs, sel: 0.5})
	}

	// Column pruning set: everything the block references by name.
	used := pl.usedCols(b)

	relNodes := make([]plan.Node, nrel)
	visCols := make([][]string, nrel)
	baseRows := make([]float64, nrel)
	filtRows := make([]float64, nrel)
	for i := range rels {
		r := &rels[i]
		preds := fuseDateRanges(relPreds[i])
		var p exec.Pred
		if len(preds) == 1 {
			p = preds[0]
		} else if len(preds) > 1 {
			p = exec.AndOf(preds...)
		}
		switch {
		case r.table != "":
			var colsSel []string
			for _, c := range r.cols {
				for _, u := range used {
					if u == c.Name {
						colsSel = append(colsSel, c.Name)
						break
					}
				}
			}
			relNodes[i] = &plan.Scan{Table: r.table, Columns: colsSel, Pred: p}
			visCols[i] = colsSel
			baseRows[i] = pl.st.tableRows(r.table)
			filtRows[i] = baseRows[i] * pl.st.predSel(r.table, p)
		default:
			var n plan.Node
			if r.cte != nil {
				n = r.cte.memo
				baseRows[i] = r.cte.rows
			} else {
				sub, bout, err := pl.lowerBlock(r.sub, nil)
				if err != nil {
					return nil, blockOut{}, err
				}
				n = sub
				baseRows[i] = bout.rows
			}
			filtRows[i] = baseRows[i]
			if p != nil {
				n = &plan.Filter{Input: n, Pred: p}
				filtRows[i] *= 0.5
			}
			relNodes[i] = n
			for _, c := range r.cols {
				visCols[i] = append(visCols[i], c.Name)
			}
		}
		for _, w := range wraps[i] {
			kind := plan.Semi
			if w.neg {
				kind = plan.Anti
			}
			relNodes[i] = &plan.HashJoin{Kind: kind, Build: w.build, Probe: relNodes[i],
				BuildKeys: []string{w.buildKey}, ProbeKeys: []string{w.probeKey}}
			filtRows[i] *= 0.5
		}
	}

	// Relations after the first attach to the spine as hash-join builds.
	for i := 1; i < nrel; i++ {
		es := edges[i]
		if len(es) == 0 {
			return nil, blockOut{}, errAt(rels[i].item.Pos, "no join predicate for table %q", rels[i].name)
		}
		ukey := rels[i].ukey
		var bk, pk []string
		var rest []edgeT
		unique := false
		if len(ukey) == 2 && len(es) >= 2 && matchKeySet([]string{es[0].relCol, es[1].relCol}, ukey) {
			bk = []string{es[0].relCol, es[1].relCol}
			pk = []string{es[0].nearCol, es[1].nearCol}
			unique = true
			rest = es[2:]
		} else {
			bk = []string{es[0].relCol}
			pk = []string{es[0].nearCol}
			unique = len(ukey) == 1 && ukey[0] == es[0].relCol
			rest = es[1:]
		}
		sel := 1.0
		if rels[i].table != "" && baseRows[i] > 0 {
			sel = filtRows[i] / baseRows[i]
			if sel > 1 {
				sel = 1
			}
		}
		steps = append(steps, step{
			kind: stepInner, pos: es[0].pos, label: "join " + rels[i].name, rel: i,
			buildNode: relNodes[i], buildKeys: bk, probeKeys: pk, unique: unique,
			needs: pk, provides: visCols[i], buildRows: filtRows[i], buildCols: len(visCols[i]), sel: sel,
		})
		for _, e := range rest {
			p, err := pl.colCmpEq(sc, e.nearCol, e.relCol)
			if err != nil {
				return nil, blockOut{}, err
			}
			steps = append(steps, step{kind: stepResidual, pos: e.pos, label: "filter " + p.String(),
				pred: p, needs: []string{e.nearCol, e.relCol}, sel: 0.5})
		}
	}

	sort.SliceStable(steps, func(a, b int) bool { return steps[a].pos < steps[b].pos })

	ordered, rowsEst := pl.orderSteps(rels[0].name, steps, visCols[0], filtRows[0])

	node := relNodes[0]
	curCols := append([]string(nil), visCols[0]...)
	for si := range ordered {
		st := &ordered[si]
		switch st.kind {
		case stepInner:
			node = &plan.HashJoin{Kind: plan.Inner, Build: st.buildNode, Probe: node,
				BuildKeys: st.buildKeys, ProbeKeys: st.probeKeys}
			curCols = append(curCols, st.provides...)
		case stepSemi, stepAnti:
			kind := plan.Semi
			if st.kind == stepAnti {
				kind = plan.Anti
			}
			node = &plan.HashJoin{Kind: kind, Build: st.buildNode, Probe: node,
				BuildKeys: st.buildKeys, ProbeKeys: st.probeKeys}
		case stepResidual:
			node = &plan.Filter{Input: node, Pred: st.pred}
		case stepProjCmp:
			ln := fmt.Sprintf("__cmp%dl", si)
			rn := fmt.Sprintf("__cmp%dr", si)
			cols := make([]plan.NamedExpr, 0, len(curCols)+2)
			for _, c := range curCols {
				cols = append(cols, plan.NamedExpr{Name: c, Expr: exec.Col{Name: c}})
			}
			cols = append(cols,
				plan.NamedExpr{Name: ln, Expr: st.lExpr},
				plan.NamedExpr{Name: rn, Expr: st.rExpr})
			node = &plan.Filter{
				Input: &plan.Project{Input: node, Cols: cols},
				Pred:  exec.ColCmpF{A: ln, B: rn, Op: st.cmpOp},
			}
			curCols = append(curCols, ln, rn)
		}
	}

	node, err = pl.lowerOutput(b, node, sc, outCols, resolved)
	if err != nil {
		return nil, blockOut{}, err
	}
	if len(b.GroupBy) > 0 {
		rowsEst = rowsEst / 2
	} else if blockHasAgg(b) {
		rowsEst = 1
	}
	if b.Limit >= 0 && float64(b.Limit) < rowsEst {
		rowsEst = float64(b.Limit)
	}
	if rowsEst < 1 {
		rowsEst = 1
	}
	return node, blockOut{cols: outCols, ukey: outUkey, rows: rowsEst}, nil
}

// usedCols collects every column name the block references, for
// base-scan pruning. Subquery bodies resolve in their own scope and are
// excluded by walkCols.
func (pl *planner) usedCols(b *SelectBlock) []string {
	var used []string
	for i := range b.Items {
		for _, n := range walkCols(b.Items[i].Expr, nil) {
			used = dedupAppend(used, n)
		}
	}
	for _, e := range []Expr{b.Where, b.Having} {
		if e == nil {
			continue
		}
		for _, n := range walkCols(e, nil) {
			used = dedupAppend(used, n)
		}
	}
	for i := range b.From {
		if b.From[i].On == nil {
			continue
		}
		for _, n := range walkCols(b.From[i].On, nil) {
			used = dedupAppend(used, n)
		}
	}
	return used
}

// colEquality matches `a = b` between columns of two different relations.
func colEquality(c Expr, sc scope) (*ColRef, *ColRef, bool) {
	cmp, ok := c.(*BinExpr)
	if !ok || cmp.Op != "=" {
		return nil, nil, false
	}
	a, okA := cmp.L.(*ColRef)
	b, okB := cmp.R.(*ColRef)
	if !okA || !okB {
		return nil, nil, false
	}
	ba, inA := sc[a.Name]
	bb, inB := sc[b.Name]
	if !inA || !inB || ba.rel == bb.rel {
		return nil, nil, false
	}
	return a, b, true
}

// colCmpEq builds a row-wise equality predicate between two columns of
// the joined table.
func (pl *planner) colCmpEq(sc scope, a, b string) (exec.Pred, error) {
	ta, tb := sc[a].typ, sc[b].typ
	if ta != tb {
		return nil, internalf("join residual %s = %s compares %s and %s", a, b, ta, tb)
	}
	switch ta {
	case colstore.Int64:
		return exec.ColCmpI{A: a, B: b, Op: exec.Eq}, nil
	case colstore.Float64:
		return exec.ColCmpF{A: a, B: b, Op: exec.Eq}, nil
	case colstore.Date:
		return exec.ColCmpD{A: a, B: b, Op: exec.Eq}, nil
	}
	return nil, internalf("join residual %s = %s: unsupported type %s", a, b, ta)
}

// matchKeySet reports whether the two name lists contain the same names.
func matchKeySet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// blockHasAgg reports whether any select item aggregates.
func blockHasAgg(b *SelectBlock) bool {
	for i := range b.Items {
		if containsAgg(b.Items[i].Expr) {
			return true
		}
	}
	return false
}
