package sql

import (
	"testing"

	"wimpi/internal/tpch"
)

// fuzzSeeds is the corpus every fuzz target starts from: all 22 TPC-H
// texts plus a pile of malformed statements that exercise error paths.
func fuzzSeeds(f *testing.F) {
	for q := 1; q <= 22; q++ {
		text, err := tpch.SQL(q)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(text)
	}
	for _, s := range []string{
		"",
		"select",
		"select * from t",
		"select a from",
		"select a as from t",
		"select a from t where",
		"select a from t where a in (",
		"select a from t where a in (1,",
		"select a from t where a between 1",
		"select a from t group by",
		"select a from t order by a limit",
		"select a from t limit -1",
		"with as (select a from t) select a from x",
		"with x as select a from t",
		"select 'unterminated from t",
		"select \x00 from t",
		"select a from t where a = date",
		"select a from t where a = date 'nope'",
		"select a from t where a > 1 + interval",
		"select a from t where a > interval '1' century",
		"select count(* from t",
		"select sum() as s from t",
		"select case when a then 1 end as c from t",
		"select substring(a) as s from t",
		"select a from (select b from t",
		"select a from t t2 t3",
		"select a from t left join",
		"select a from t left join u on",
		"select a.b.c from t",
		"select a from t where a like 5",
		"select a from t having",
		"select -- comment only",
		"select a /* unclosed from t",
		"select 1e999 as x from t",
		"select 9223372036854775808 as x from t",
		"((((((((((",
		"select a from t where not not not a = 1",
	} {
		f.Add(s)
	}
}

// FuzzLexer: the lexer must never panic and must consume any byte
// sequence, either producing tokens or a positioned error.
func FuzzLexer(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		// A successful lex always terminates with an EOF token carrying a
		// valid position.
		if len(toks) == 0 {
			t.Fatal("lex returned no tokens and no error")
		}
		last := toks[len(toks)-1]
		if last.kind != tEOF {
			t.Fatalf("token stream does not end in EOF: %v", last.kind)
		}
		for _, tok := range toks {
			if tok.pos.Line < 1 || tok.pos.Col < 1 {
				t.Fatalf("token %q has invalid position %v", tok.text, tok.pos)
			}
		}
	})
}

// FuzzParser: the parser must never panic, and any statement it
// accepts must survive a parse -> print -> parse round trip with a
// stable rendering (print(parse(print(s))) == print(s)). That pins the
// printer and parser to the same grammar.
func FuzzParser(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			if stmt != nil {
				t.Fatal("Parse returned both a statement and an error")
			}
			return
		}
		printed := stmt.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of printed statement failed: %v\nprinted: %s", err, printed)
		}
		if got := again.String(); got != printed {
			t.Fatalf("printing is not a fixed point:\nfirst:  %s\nsecond: %s", printed, got)
		}
	})
}
