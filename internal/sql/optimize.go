package sql

import (
	"fmt"
	"strings"
	"time"

	"wimpi/internal/exec"
	"wimpi/internal/obs"
)

// Report collects the cost-based optimizer's decisions for EXPLAIN.
type Report struct {
	Choices []obs.PlanChoice
}

// maxWindow bounds exhaustive permutation of a reorder window. 6! = 720
// orders, each costed with a handful of float ops; TPC-H never exceeds
// four steps per window.
const maxWindow = 6

// movable reports whether a step can be reordered without changing
// result bytes. Unique-key inner joins preserve spine-row multiplicity
// and order (each probe row matches at most once), so they commute with
// filters and with each other. A non-unique inner join can duplicate
// probe rows, which makes the interleaving order observable: it is a
// barrier.
func movable(s *step) bool {
	if s.kind == stepInner {
		return s.unique
	}
	return true
}

// orderSteps chooses the order in which the spine's pipeline steps run.
// Steps arrive in canonical (statement text) order. The optimizer
// partitions them into windows of byte-order-safe steps delimited by
// barriers, exhaustively enumerates each window's legal permutations,
// and keeps the canonical order unless a permutation is strictly
// cheaper under the hardware cost model. Because every step's
// selectivity is independent of its position, the rows leaving a window
// are the same for every permutation — so optimizing each window in
// isolation minimizes total modeled cost exactly.
//
// Everything here derives from catalog statistics; the worker count
// never enters, so the same statement plans identically at any degree
// of parallelism (and on every cluster node).
func (pl *planner) orderSteps(spine string, steps []step, spineCols []string, spineRows float64) ([]step, float64) {
	// Final cardinality commutes with order: the product of
	// selectivities is the same for any permutation.
	finalRows := spineRows
	for i := range steps {
		finalRows *= steps[i].sel
	}

	if !pl.opt || len(steps) < 2 {
		return steps, finalRows
	}

	avail := make(map[string]bool, len(spineCols))
	for _, c := range spineCols {
		avail[c] = true
	}
	apply := func(s *step, rows float64, cols int) (float64, int) {
		for _, p := range s.provides {
			avail[p] = true
		}
		switch s.kind {
		case stepInner:
			cols += s.buildCols
		case stepProjCmp:
			cols += 2
		}
		return rows * s.sel, cols
	}

	out := make([]step, 0, len(steps))
	rows := spineRows
	cols := len(spineCols)
	for i := 0; i < len(steps); {
		if !movable(&steps[i]) {
			rows, cols = apply(&steps[i], rows, cols)
			out = append(out, steps[i])
			i++
			continue
		}
		j := i
		for j < len(steps) && movable(&steps[j]) {
			j++
		}
		win := steps[i:j]
		chosen := pl.chooseWindowOrder(spine, win, avail, rows, cols)
		for k := range chosen {
			rows, cols = apply(&chosen[k], rows, cols)
		}
		out = append(out, chosen...)
		i = j
	}
	return out, finalRows
}

// chooseWindowOrder picks the cheapest legal permutation of one reorder
// window, keeping the canonical order on ties. avail is read-only here.
func (pl *planner) chooseWindowOrder(spine string, win []step, avail map[string]bool, rows float64, cols int) []step {
	n := len(win)
	if n < 2 || n > maxWindow {
		return win
	}

	legal := func(perm []int) bool {
		added := make([]string, 0, 8)
		defer func() {
			for _, p := range added {
				delete(avail, p)
			}
		}()
		for _, k := range perm {
			for _, need := range win[k].needs {
				if !avail[need] {
					return false
				}
			}
			for _, p := range win[k].provides {
				if !avail[p] {
					avail[p] = true
					added = append(added, p)
				}
			}
		}
		return true
	}

	perms := permutations(n)
	bestPerm := perms[0] // identity: canonical order is legal by construction
	bestCost := pl.windowCost(win, bestPerm, rows, cols)
	canonicalCost := bestCost
	evaluated := 1
	for _, perm := range perms[1:] {
		if !legal(perm) {
			continue
		}
		evaluated++
		if c := pl.windowCost(win, perm, rows, cols); c < bestCost {
			bestCost = c
			bestPerm = perm
		}
	}

	chosen := make([]step, n)
	for i, k := range bestPerm {
		chosen[i] = win[k]
	}
	reordered := false
	for i, k := range bestPerm {
		if i != k {
			reordered = true
			break
		}
	}
	if pl.rep != nil && evaluated >= 2 {
		pl.rep.Choices = append(pl.rep.Choices, obs.PlanChoice{
			Pipeline:      "pipeline over " + spine,
			Canonical:     stepLabels(win, nil),
			Chosen:        stepLabels(win, bestPerm),
			CanonicalCost: canonicalCost,
			ChosenCost:    bestCost,
			Reordered:     reordered,
			Notes:         pl.strategyNotes(chosen, rows),
		})
	}
	return chosen
}

// windowCost prices one permutation of a window with the hardware model,
// simulating the counter profile each step's kernels would charge given
// the planner's cardinality estimates.
func (pl *planner) windowCost(win []step, perm []int, rows float64, cols int) time.Duration {
	var c exec.Counters
	for _, k := range perm {
		s := &win[k]
		switch s.kind {
		case stepInner:
			out := rows * s.sel
			c.HashBuildTuples += int64(s.buildRows)
			c.HashProbeTuples += int64(rows)
			c.RandomAccesses += int64(rows + out*float64(s.buildCols))
			c.SeqBytes += int64(s.buildRows*float64(s.buildCols)*8 + out*float64(cols+s.buildCols)*8)
			rows = out
			cols += s.buildCols
		case stepSemi, stepAnti:
			out := rows * s.sel
			c.HashBuildTuples += int64(s.buildRows)
			c.HashProbeTuples += int64(rows)
			c.RandomAccesses += int64(out)
			c.SeqBytes += int64(out * float64(cols) * 8)
			rows = out
		case stepResidual:
			c.TuplesScanned += int64(rows)
			c.SeqBytes += int64(rows * 16)
			c.IntOps += int64(rows)
			rows *= s.sel
		case stepProjCmp:
			c.SeqBytes += int64(rows * 24)
			c.FloatOps += int64(2 * rows)
			rows *= s.sel
			cols += 2
		}
	}
	return pl.model.OperatorTime(&pl.pi, c, 1)
}

// strategyNotes predicts, per join step of the chosen order, which build
// strategy the executor will pick at run time: radix-partitioned vs
// chained build, and whether a Bloom pre-filter pays off. The thresholds
// mirror the executor's own (plan.HashJoin), evaluated on the planner's
// estimates so EXPLAIN can show them before running anything.
func (pl *planner) strategyNotes(chosen []step, rows float64) []string {
	var notes []string
	for i := range chosen {
		s := &chosen[i]
		switch s.kind {
		case stepInner, stepSemi, stepAnti:
			build := "chained build"
			if pl.llc > 0 && s.buildRows >= 4096 && exec.JoinTableBytes(int(s.buildRows)) > pl.llc {
				build = "radix build"
			}
			bloom := "no bloom"
			if rows >= 4*s.buildRows && exec.BloomBytes(int(s.buildRows)) <= pl.llc {
				bloom = "bloom prefilter"
			}
			notes = append(notes, fmt.Sprintf("%s: %s, %s (build ~%d rows, probe ~%d rows)",
				s.label, build, bloom, int64(s.buildRows), int64(rows)))
		}
		rows *= s.sel
	}
	return notes
}

// stepLabels renders a window's step labels in the given order (nil
// means canonical).
func stepLabels(win []step, perm []int) string {
	parts := make([]string, 0, len(win))
	if perm == nil {
		for i := range win {
			parts = append(parts, win[i].label)
		}
	} else {
		for _, k := range perm {
			parts = append(parts, win[k].label)
		}
	}
	return strings.Join(parts, " -> ")
}

// permutations enumerates all orders of [0..n) deterministically, with
// the identity permutation first.
func permutations(n int) [][]int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := k; i < n; i++ {
			idx[k], idx[i] = idx[i], idx[k]
			rec(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	rec(0)
	return out
}
