package sql

import (
	"errors"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
)

// cmpOps maps comparison spellings to executor operators.
var cmpOps = map[string]exec.CmpOp{
	"=": exec.Eq, "<>": exec.Ne, "<": exec.Lt, "<=": exec.Le, ">": exec.Gt, ">=": exec.Ge,
}

// flipOp mirrors a comparison when its operands swap sides.
func flipOp(op exec.CmpOp) exec.CmpOp {
	switch op {
	case exec.Lt:
		return exec.Gt
	case exec.Le:
		return exec.Ge
	case exec.Gt:
		return exec.Lt
	case exec.Ge:
		return exec.Le
	}
	return op
}

// numValue returns a numeric literal as float64.
func numValue(n *NumLit) float64 {
	if n.IsInt {
		return float64(n.Int)
	}
	return n.Float
}

// lowerExpr lowers a scalar expression to an executor expression.
// Aggregates are rejected; they are extracted by the group-by lowering
// before this runs.
func (pl *planner) lowerExpr(e Expr, sc scope) (exec.Expr, error) {
	switch ex := e.(type) {
	case *ColRef:
		if _, ok := sc[ex.Name]; !ok {
			return nil, errAt(ex.Pos, "unknown column %q", ex.Name)
		}
		return exec.Col{Name: ex.Name}, nil
	case *NumLit:
		return exec.ConstF{V: numValue(ex)}, nil
	case *BinExpr:
		l, err := pl.lowerExpr(ex.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := pl.lowerExpr(ex.R, sc)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "+":
			return exec.Add(l, r), nil
		case "-":
			return exec.Sub(l, r), nil
		case "*":
			return exec.Mul(l, r), nil
		case "/":
			return exec.Div(l, r), nil
		}
		return nil, errAt(ex.Pos, "operator %q is not valid in a value expression", ex.Op)
	case *CaseExpr:
		p, err := pl.lowerPred(ex.When, sc)
		if err != nil {
			return nil, err
		}
		th, err := pl.lowerExpr(ex.Then, sc)
		if err != nil {
			return nil, err
		}
		el, err := pl.lowerExpr(ex.Else, sc)
		if err != nil {
			return nil, err
		}
		return exec.CaseWhenF{Pred: p, Then: th, Else: el}, nil
	case *FuncExpr:
		switch ex.Name {
		case "year":
			arg, err := pl.lowerExpr(ex.Args[0], sc)
			if err != nil {
				return nil, err
			}
			return exec.YearExpr{Arg: arg}, nil
		case "substring":
			col := ex.Args[0].(*ColRef)
			n := ex.Args[2].(*NumLit)
			return exec.PrefixExpr{Col: col.Name, N: int(n.Int)}, nil
		case "sum", "count", "avg", "min", "max":
			return nil, errAt(ex.Pos, "aggregate function %s() is not allowed here", ex.Name)
		}
	case *StrLit, *DateLit, *IntervalLit, *SubqueryExpr,
		*NotExpr, *InExpr, *BetweenExpr, *LikeExpr:
		// Predicate and non-numeric forms; fall through to the error.
	}
	return nil, errAt(e.pos(), "unsupported value expression")
}

// foldDate folds a date-typed literal expression (date literal, plus or
// minus intervals) to a day number. ok is false when e is not a date
// literal expression at all.
func foldDate(e Expr) (int32, bool, error) {
	switch ex := e.(type) {
	case *DateLit:
		d, err := colstore.ParseDate(ex.V)
		if err != nil {
			return 0, true, errAt(ex.Pos, "bad date literal %q", ex.V)
		}
		return d, true, nil
	case *BinExpr:
		if ex.Op != "+" && ex.Op != "-" {
			return 0, false, nil
		}
		iv, ok := ex.R.(*IntervalLit)
		if !ok {
			return 0, false, nil
		}
		d, ok, err := foldDate(ex.L)
		if !ok || err != nil {
			return 0, ok, err
		}
		n := iv.N
		if ex.Op == "-" {
			n = -n
		}
		switch iv.Unit {
		case "day":
			return d + int32(n), true, nil
		case "month":
			return colstore.AddMonths(d, int(n)), true, nil
		default: // year
			return colstore.AddYears(d, int(n)), true, nil
		}
	case *ColRef, *NumLit, *StrLit, *IntervalLit, *FuncExpr, *CaseExpr,
		*NotExpr, *InExpr, *BetweenExpr, *LikeExpr, *SubqueryExpr:
		// Not a date-literal expression.
	}
	return 0, false, nil
}

// errExprCmp marks a comparison that needs computed operands: the caller
// materializes both sides with a Project and filters with a column
// comparison (Q20's availability check). Only residual (cross-relation)
// predicate positions support it.
var errExprCmp = errors.New("sql: comparison needs computed operands")

// lowerCmp lowers `L op R` to a predicate.
func (pl *planner) lowerCmp(b *BinExpr, sc scope) (exec.Pred, error) {
	op := cmpOps[b.Op]
	l, r := b.L, b.R
	// Literal op column: mirror to column op literal.
	if isLiteral(l) && !isLiteral(r) {
		l, r = r, l
		op = flipOp(op)
	}
	lc, lIsCol := l.(*ColRef)
	if lIsCol {
		bind, ok := sc[lc.Name]
		if !ok {
			return nil, errAt(lc.Pos, "unknown column %q", lc.Name)
		}
		// Column against a folded date literal.
		if d, isDate, err := foldDate(r); isDate {
			if err != nil {
				return nil, err
			}
			if bind.typ != colstore.Date {
				return nil, errAt(lc.Pos, "type mismatch: cannot compare %s and date", bind.typ)
			}
			return exec.CmpD{Column: lc.Name, Op: op, V: d}, nil
		}
		switch rv := r.(type) {
		case *NumLit:
			switch bind.typ {
			case colstore.Int64:
				if !rv.IsInt {
					return nil, errAt(rv.Pos, "cannot compare int column %q with a float literal", lc.Name)
				}
				return exec.CmpI{Column: lc.Name, Op: op, V: rv.Int}, nil
			case colstore.Float64:
				return exec.CmpF{Column: lc.Name, Op: op, V: numValue(rv)}, nil
			}
			return nil, errAt(b.Pos, "type mismatch: cannot compare %s and a number", bind.typ)
		case *StrLit:
			if bind.typ != colstore.String {
				return nil, errAt(b.Pos, "type mismatch: cannot compare %s and string", bind.typ)
			}
			switch op {
			case exec.Eq:
				return exec.StrEq{Column: lc.Name, V: rv.V}, nil
			case exec.Ne:
				return exec.StrEq{Column: lc.Name, V: rv.V, Negate: true}, nil
			}
			return nil, errAt(b.Pos, "string comparison supports only = and <>")
		case *ColRef:
			rbind, ok := sc[rv.Name]
			if !ok {
				return nil, errAt(rv.Pos, "unknown column %q", rv.Name)
			}
			if rbind.typ != bind.typ {
				return nil, errAt(b.Pos, "type mismatch: cannot compare %s and %s", bind.typ, rbind.typ)
			}
			switch bind.typ {
			case colstore.Int64:
				return exec.ColCmpI{A: lc.Name, B: rv.Name, Op: op}, nil
			case colstore.Float64:
				return exec.ColCmpF{A: lc.Name, B: rv.Name, Op: op}, nil
			case colstore.Date:
				return exec.ColCmpD{A: lc.Name, B: rv.Name, Op: op}, nil
			}
			return nil, errAt(b.Pos, "cannot compare %s columns", bind.typ)
		case *BinExpr, *DateLit, *IntervalLit, *FuncExpr, *CaseExpr,
			*NotExpr, *InExpr, *BetweenExpr, *LikeExpr, *SubqueryExpr:
			// Dates folded above; computed operands surface errExprCmp.
		}
	}
	return nil, errExprCmp
}

// isLiteral reports whether e is a constant (no column references).
func isLiteral(e Expr) bool {
	switch ex := e.(type) {
	case *NumLit, *StrLit, *DateLit, *IntervalLit:
		return true
	case *BinExpr:
		return isLiteral(ex.L) && isLiteral(ex.R)
	case *ColRef, *FuncExpr, *CaseExpr, *NotExpr, *InExpr, *BetweenExpr,
		*LikeExpr, *SubqueryExpr:
		// Column-dependent or computed at run time.
	}
	return false
}

// lowerPred lowers a boolean expression to a predicate. Comparisons that
// need computed operands surface errExprCmp; callers in residual
// positions handle it, everywhere else it is a user error.
func (pl *planner) lowerPred(e Expr, sc scope) (exec.Pred, error) {
	switch ex := e.(type) {
	case *BinExpr:
		switch ex.Op {
		case "and":
			var ps []exec.Pred
			for _, c := range flattenAnd(ex) {
				p, err := pl.lowerPred(c, sc)
				if err != nil {
					return nil, err
				}
				ps = append(ps, p)
			}
			return exec.AndOf(fuseDateRanges(ps)...), nil
		case "or":
			var ps []exec.Pred
			for _, c := range flattenOr(ex) {
				p, err := pl.lowerPred(c, sc)
				if err != nil {
					return nil, err
				}
				ps = append(ps, p)
			}
			return exec.OrOf(ps...), nil
		default:
			return pl.lowerCmp(ex, sc)
		}
	case *InExpr:
		if ex.Sub != nil {
			return nil, errAt(ex.Pos, "IN subquery is not valid in this position")
		}
		col, ok := ex.E.(*ColRef)
		if !ok {
			return nil, errAt(ex.E.pos(), "IN needs a plain column on the left")
		}
		bind, okc := sc[col.Name]
		if !okc {
			return nil, errAt(col.Pos, "unknown column %q", col.Name)
		}
		if ex.Negate {
			return nil, errAt(ex.Pos, "NOT IN with a value list is not supported")
		}
		switch bind.typ {
		case colstore.String:
			vals := make([]string, len(ex.List))
			for i, v := range ex.List {
				s, oks := v.(*StrLit)
				if !oks {
					return nil, errAt(v.pos(), "IN list for a string column needs string literals")
				}
				vals[i] = s.V
			}
			return exec.StrIn{Column: col.Name, Vals: vals}, nil
		case colstore.Int64:
			ps := make([]exec.Pred, len(ex.List))
			for i, v := range ex.List {
				n, okn := v.(*NumLit)
				if !okn || !n.IsInt {
					return nil, errAt(v.pos(), "IN list for an int column needs integer literals")
				}
				ps[i] = exec.CmpI{Column: col.Name, Op: exec.Eq, V: n.Int}
			}
			return exec.OrOf(ps...), nil
		}
		return nil, errAt(ex.Pos, "IN lists support string and int columns, not %s", bind.typ)
	case *BetweenExpr:
		col, ok := ex.E.(*ColRef)
		if !ok {
			return nil, errAt(ex.E.pos(), "BETWEEN needs a plain column on the left")
		}
		bind, okc := sc[col.Name]
		if !okc {
			return nil, errAt(col.Pos, "unknown column %q", col.Name)
		}
		switch bind.typ {
		case colstore.Float64:
			lo, okl := ex.Lo.(*NumLit)
			hi, okh := ex.Hi.(*NumLit)
			if !okl || !okh {
				return nil, errAt(ex.Pos, "BETWEEN bounds must be numeric literals")
			}
			return exec.FloatRange{Column: col.Name, Lo: numValue(lo), Hi: numValue(hi)}, nil
		case colstore.Int64:
			lo, okl := ex.Lo.(*NumLit)
			hi, okh := ex.Hi.(*NumLit)
			if !okl || !okh || !lo.IsInt || !hi.IsInt {
				return nil, errAt(ex.Pos, "BETWEEN bounds must be integer literals")
			}
			return exec.AndOf(
				exec.CmpI{Column: col.Name, Op: exec.Ge, V: lo.Int},
				exec.CmpI{Column: col.Name, Op: exec.Le, V: hi.Int},
			), nil
		case colstore.Date:
			lo, okl, err := foldDate(ex.Lo)
			if err != nil {
				return nil, err
			}
			hi, okh, err := foldDate(ex.Hi)
			if err != nil {
				return nil, err
			}
			if !okl || !okh {
				return nil, errAt(ex.Pos, "BETWEEN bounds must be date literals")
			}
			return exec.AndOf(
				exec.CmpD{Column: col.Name, Op: exec.Ge, V: lo},
				exec.CmpD{Column: col.Name, Op: exec.Le, V: hi},
			), nil
		}
		return nil, errAt(ex.Pos, "BETWEEN supports numeric and date columns, not %s", bind.typ)
	case *LikeExpr:
		col, ok := ex.E.(*ColRef)
		if !ok {
			return nil, errAt(ex.E.pos(), "LIKE needs a plain column on the left")
		}
		bind, okc := sc[col.Name]
		if !okc {
			return nil, errAt(col.Pos, "unknown column %q", col.Name)
		}
		if bind.typ != colstore.String {
			return nil, errAt(ex.Pos, "LIKE needs a string column, got %s", bind.typ)
		}
		return exec.Like{Column: col.Name, Pattern: ex.Pattern, Negate: ex.Negate}, nil
	case *NotExpr:
		return nil, errAt(ex.Pos, "NOT is supported only as NOT IN and NOT LIKE")
	case *ColRef, *NumLit, *StrLit, *DateLit, *IntervalLit, *FuncExpr,
		*CaseExpr, *SubqueryExpr:
		// Value forms; fall through to the error below.
	}
	return nil, errAt(e.pos(), "expected a boolean predicate")
}

// flattenAnd returns the conjuncts of e in text order.
func flattenAnd(e Expr) []Expr {
	if b, ok := e.(*BinExpr); ok && b.Op == "and" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []Expr{e}
}

// flattenOr returns the disjuncts of e in text order.
func flattenOr(e Expr) []Expr {
	if b, ok := e.(*BinExpr); ok && b.Op == "or" {
		return append(flattenOr(b.L), flattenOr(b.R)...)
	}
	return []Expr{e}
}

// fuseDateRanges rewrites a `col >= lo` / `col < hi` conjunct pair into
// the engine's half-open DateRange predicate, the idiom every hand-built
// TPC-H plan uses for its date windows.
func fuseDateRanges(ps []exec.Pred) []exec.Pred {
	out := make([]exec.Pred, 0, len(ps))
	used := make([]bool, len(ps))
	for i, p := range ps {
		if used[i] {
			continue
		}
		lo, ok := p.(exec.CmpD)
		if !ok || lo.Op != exec.Ge {
			out = append(out, p)
			continue
		}
		fused := false
		for j := i + 1; j < len(ps); j++ {
			if used[j] {
				continue
			}
			hi, okh := ps[j].(exec.CmpD)
			if okh && hi.Op == exec.Lt && hi.Column == lo.Column {
				out = append(out, exec.DateRange{Column: lo.Column, Lo: lo.V, Hi: hi.V})
				used[j] = true
				fused = true
				break
			}
		}
		if !fused {
			out = append(out, p)
		}
	}
	return out
}
