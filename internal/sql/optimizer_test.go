package sql_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wimpi/internal/colstore"
	"wimpi/internal/engine"
	"wimpi/internal/obs"
	"wimpi/internal/sql"
	"wimpi/internal/tpch"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>, rewriting it under
// -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// reportDB builds a planning catalog over the shared fixture.
func reportDB(workers int) *engine.DB {
	db := engine.NewDB(engine.Config{Workers: workers})
	fixture().RegisterAll(db)
	return db
}

// TestOptimizerNeverPricesWorseThanCanonical is the core cost-model
// property: for every query and every reorder window, the chosen order's
// estimated cost must be at or below the canonical order's (ties keep
// canonical, so Chosen == Canonical there).
func TestOptimizerNeverPricesWorseThanCanonical(t *testing.T) {
	db := reportDB(4)
	for q := 1; q <= 22; q++ {
		text, err := tpch.SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := sql.Plan(db, text, sql.Options{UniqueKeys: tpch.TableKeys()})
		if err != nil {
			t.Fatalf("Q%d: %v", q, err)
		}
		for _, c := range pl.Report.Choices {
			if c.ChosenCost > c.CanonicalCost {
				t.Errorf("Q%d %s: chosen %v prices worse than canonical %v",
					q, c.Pipeline, c.ChosenCost, c.CanonicalCost)
			}
			if !c.Reordered && c.Chosen != c.Canonical {
				t.Errorf("Q%d %s: not reordered but orders differ", q, c.Pipeline)
			}
		}
	}
}

// TestOptimizerChoicesWorkerIndependent: planning depends only on the
// catalog, never on the execution worker count, so every node of a
// cluster (and every -workers setting) makes identical decisions.
func TestOptimizerChoicesWorkerIndependent(t *testing.T) {
	var base []string
	for i, workers := range []int{1, 2, 4, 8} {
		db := reportDB(workers)
		var rendered []string
		for q := 1; q <= 22; q++ {
			text, err := tpch.SQL(q)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := sql.Plan(db, text, sql.Options{UniqueKeys: tpch.TableKeys()})
			if err != nil {
				t.Fatalf("Q%d: %v", q, err)
			}
			rendered = append(rendered, obs.RenderPlanChoices(pl.Report.Choices))
		}
		if i == 0 {
			base = rendered
			continue
		}
		for q := range rendered {
			if rendered[q] != base[q] {
				t.Errorf("Q%d: plan choices differ between 1 and %d workers:\n%s\nvs\n%s",
					q+1, workers, base[q], rendered[q])
			}
		}
	}
}

// TestOptimizerSomeReorderHappens guards the demonstration requirement:
// at least one TPC-H query must actually pick a non-canonical join
// order under the default hardware model (Q2 moves the selective part
// join to the front of the offers pipeline).
func TestOptimizerSomeReorderHappens(t *testing.T) {
	db := reportDB(4)
	text, err := tpch.SQL(2)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sql.Plan(db, text, sql.Options{UniqueKeys: tpch.TableKeys()})
	if err != nil {
		t.Fatal(err)
	}
	reordered := false
	for _, c := range pl.Report.Choices {
		if c.Reordered && c.ChosenCost < c.CanonicalCost {
			reordered = true
		}
	}
	if !reordered {
		t.Fatalf("Q2: expected a strictly cheaper join reorder, got:\n%s",
			obs.RenderPlanChoices(pl.Report.Choices))
	}
}

// TestNoOptKeepsCanonicalAndParity: disabling the optimizer keeps the
// canonical statement order, produces no choices, and still matches the
// hand-built plans byte for byte.
func TestNoOptKeepsCanonicalAndParity(t *testing.T) {
	db := reportDB(4)
	for q := 1; q <= 22; q++ {
		text, err := tpch.SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := sql.Plan(db, text, sql.Options{UniqueKeys: tpch.TableKeys(), NoOpt: true})
		if err != nil {
			t.Fatalf("Q%d: %v", q, err)
		}
		if len(pl.Report.Choices) != 0 {
			t.Errorf("Q%d: NoOpt produced %d choices", q, len(pl.Report.Choices))
		}
		got, err := db.Run(pl.Node)
		if err != nil {
			t.Fatalf("Q%d: %v", q, err)
		}
		want, err := db.Run(tpch.MustQuery(q))
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := colstore.TablesIdentical(got.Table, want.Table); !ok {
			t.Errorf("Q%d: NoOpt result differs: %s", q, diff)
		}
	}
}

// TestQ2ExplainGolden freezes the optimizer report for Q2 — the query
// where cost-based join reordering demonstrably beats the statement
// order (the part join is far more selective than supplier or nation,
// so it moves to the front of the offers pipeline).
func TestQ2ExplainGolden(t *testing.T) {
	db := reportDB(4)
	text, err := tpch.SQL(2)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sql.Plan(db, text, sql.Options{UniqueKeys: tpch.TableKeys()})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "q2_explain.golden", obs.RenderPlanChoices(pl.Report.Choices))
}
