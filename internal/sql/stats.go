package sql

import (
	"wimpi/internal/exec"
	"wimpi/internal/plan"
)

// statsSampleRows bounds the rows sampled per predicate estimate.
const statsSampleRows = 1024

// stats estimates cardinalities from the catalog. Estimates depend only
// on table contents and the statement text — never on the worker count —
// so every node of a cluster plans its own partition deterministically.
type stats struct {
	cat plan.Catalog
	// ctr accumulates the planner's own estimation work so optimization
	// cost shows up in query counters like any other operator.
	ctr *exec.Counters
}

// tableRows returns the base table's row count.
func (s *stats) tableRows(name string) float64 {
	t, err := s.cat.Table(name)
	if err != nil {
		return 0
	}
	return float64(t.NumRows())
}

// predSel estimates a scan predicate's selectivity by evaluating it over
// a deterministic strided sample of the table. Errors degrade to 1.0
// (no pruning assumed) rather than failing planning.
func (s *stats) predSel(table string, p exec.Pred) float64 {
	if p == nil {
		return 1
	}
	t, err := s.cat.Table(table)
	if err != nil {
		return 1
	}
	rows := t.NumRows()
	if rows == 0 {
		return 1
	}
	k := rows
	if k > statsSampleRows {
		k = statsSampleRows
	}
	sel := make([]int32, k)
	for i := 0; i < k; i++ {
		sel[i] = int32(i * rows / k)
		s.ctr.IntOps++
	}
	sample, err := exec.GatherTable(t, sel, 1, exec.DefaultMorselRows, s.ctr)
	if err != nil {
		// Planning-time sampling has no scheduling handle attached, so
		// this never fires; fall back to the neutral selectivity anyway.
		return 1
	}
	s.ctr.RandomAccesses += int64(k) * int64(t.NumCols())
	s.ctr.SeqBytes += sample.SizeBytes()
	hits, err := p.Sel(sample, nil, s.ctr)
	if err != nil {
		return 1
	}
	return float64(len(hits)) / float64(k)
}
