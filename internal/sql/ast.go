package sql

import (
	"fmt"
	"strings"
)

// Stmt is a parsed statement: optional WITH clause plus a select block.
type Stmt struct {
	CTEs []CTE
	Sel  *SelectBlock
}

// CTE is one WITH entry.
type CTE struct {
	Name string
	Sel  *SelectBlock
	Pos  Pos
}

// SelectBlock is one SELECT ... FROM ... query block.
type SelectBlock struct {
	Items   []SelectItem
	From    []FromItem
	Where   Expr // nil when absent
	GroupBy []Ident
	Having  Expr
	OrderBy []OrderKey
	Limit   int // -1 when absent
	Pos     Pos
}

// SelectItem is one select-list entry.
type SelectItem struct {
	Expr  Expr
	Alias string // "" when none
	Pos   Pos
}

// FromItem is one FROM entry: a named table (base or CTE) or a derived
// table. JoinLeft marks a `left join ... on ...` item.
type FromItem struct {
	Table    string // "" for derived tables
	Sub      *SelectBlock
	Alias    string
	JoinLeft bool
	On       Expr // only for JoinLeft items
	Pos      Pos
}

// Ident is a positioned identifier (GROUP BY keys).
type Ident struct {
	Name string
	Pos  Pos
}

// OrderKey is one ORDER BY entry.
type OrderKey struct {
	Name string
	Desc bool
	Pos  Pos
}

// Expr is a parsed expression.
type Expr interface {
	fmt.Stringer
	pos() Pos
}

// ColRef is a bare column reference.
type ColRef struct {
	Name string
	Pos  Pos
}

// NumLit is a numeric literal; the source text is kept verbatim so the
// printer round-trips exactly.
type NumLit struct {
	Text  string
	IsInt bool
	Int   int64
	Float float64
	Pos   Pos
}

// StrLit is a string literal.
type StrLit struct {
	V   string
	Pos Pos
}

// DateLit is date 'yyyy-mm-dd'.
type DateLit struct {
	V   string
	Pos Pos
}

// IntervalLit is interval 'n' day|month|year.
type IntervalLit struct {
	N    int64
	Unit string
	Pos  Pos
}

// BinExpr is a binary operation: arithmetic (+ - * /), comparison
// (= <> < <= > >=), or boolean (and, or).
type BinExpr struct {
	Op   string
	L, R Expr
	Pos  Pos
}

// NotExpr is boolean negation.
type NotExpr struct {
	E   Expr
	Pos Pos
}

// InExpr is `e [not] in (list)` or `e [not] in (select ...)`.
type InExpr struct {
	E      Expr
	List   []Expr
	Sub    *SelectBlock
	Negate bool
	Pos    Pos
}

// BetweenExpr is `e between lo and hi` (inclusive).
type BetweenExpr struct {
	E, Lo, Hi Expr
	Pos       Pos
}

// LikeExpr is `e [not] like 'pattern'`.
type LikeExpr struct {
	E       Expr
	Pattern string
	Negate  bool
	Pos     Pos
}

// CaseExpr is the single-branch `case when p then a else b end`.
type CaseExpr struct {
	When       Expr
	Then, Else Expr
	Pos        Pos
}

// FuncExpr is a call: sum, count, avg, min, max, year, substring.
// count(*) has nil Args.
type FuncExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// SubqueryExpr is a scalar subquery in expression position.
type SubqueryExpr struct {
	Sel *SelectBlock
	Pos Pos
}

func (e *ColRef) pos() Pos      { return e.Pos }
func (e *NumLit) pos() Pos      { return e.Pos }
func (e *StrLit) pos() Pos      { return e.Pos }
func (e *DateLit) pos() Pos     { return e.Pos }
func (e *IntervalLit) pos() Pos { return e.Pos }
func (e *BinExpr) pos() Pos     { return e.Pos }
func (e *NotExpr) pos() Pos     { return e.Pos }
func (e *InExpr) pos() Pos      { return e.Pos }
func (e *BetweenExpr) pos() Pos { return e.Pos }
func (e *LikeExpr) pos() Pos    { return e.Pos }
func (e *CaseExpr) pos() Pos    { return e.Pos }
func (e *FuncExpr) pos() Pos    { return e.Pos }
func (e *SubqueryExpr) pos() Pos { return e.Pos }

// quoteStr renders a string literal with '' escaping.
func quoteStr(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func (e *ColRef) String() string  { return e.Name }
func (e *NumLit) String() string  { return e.Text }
func (e *StrLit) String() string  { return quoteStr(e.V) }
func (e *DateLit) String() string { return "date " + quoteStr(e.V) }
func (e *IntervalLit) String() string {
	return fmt.Sprintf("interval '%d' %s", e.N, e.Unit)
}

// prec returns the printer precedence of an expression, mirroring the
// parser's levels so String() parenthesizes exactly where reparsing
// needs it.
func prec(e Expr) int {
	switch ex := e.(type) {
	case *BinExpr:
		switch ex.Op {
		case "or":
			return 1
		case "and":
			return 2
		case "=", "<>", "<", "<=", ">", ">=":
			return 4
		case "+", "-":
			return 5
		default: // * /
			return 6
		}
	case *NotExpr:
		return 3
	case *InExpr, *BetweenExpr, *LikeExpr:
		return 4
	case *ColRef, *NumLit, *StrLit, *DateLit, *IntervalLit, *FuncExpr,
		*CaseExpr, *SubqueryExpr:
		return 7 // atoms and postfix forms bind tightest
	}
	return 7
}

// child renders a subexpression of a parent with precedence p,
// parenthesizing when binding would change on reparse.
func child(e Expr, p int) string {
	if prec(e) < p {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// rightChild is child for the right operand of a left-associative
// operator: equal precedence needs parentheses there.
func rightChild(e Expr, p int) string {
	if prec(e) <= p {
		return "(" + e.String() + ")"
	}
	return e.String()
}

func (e *BinExpr) String() string {
	p := prec(e)
	return child(e.L, p) + " " + e.Op + " " + rightChild(e.R, p)
}

func (e *NotExpr) String() string { return "not " + child(e.E, prec(e)+1) }

func (e *InExpr) String() string {
	var sb strings.Builder
	sb.WriteString(child(e.E, 5))
	if e.Negate {
		sb.WriteString(" not")
	}
	sb.WriteString(" in (")
	if e.Sub != nil {
		sb.WriteString(e.Sub.String())
	} else {
		for i, v := range e.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(v.String())
		}
	}
	sb.WriteString(")")
	return sb.String()
}

func (e *BetweenExpr) String() string {
	return child(e.E, 5) + " between " + child(e.Lo, 5) + " and " + child(e.Hi, 5)
}

func (e *LikeExpr) String() string {
	s := child(e.E, 5)
	if e.Negate {
		s += " not"
	}
	return s + " like " + quoteStr(e.Pattern)
}

func (e *CaseExpr) String() string {
	return "case when " + e.When.String() + " then " + e.Then.String() +
		" else " + e.Else.String() + " end"
}

func (e *FuncExpr) String() string {
	if e.Name == "count" && len(e.Args) == 0 {
		return "count(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

func (e *SubqueryExpr) String() string { return "(" + e.Sel.String() + ")" }

// String renders the block as canonical SQL text; parsing it again
// yields a structurally identical block (round-trip stability, asserted
// by FuzzParser).
func (b *SelectBlock) String() string {
	var sb strings.Builder
	sb.WriteString("select ")
	for i, it := range b.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" as " + it.Alias)
		}
	}
	sb.WriteString(" from ")
	for i, f := range b.From {
		if f.JoinLeft {
			sb.WriteString(" left join ")
		} else if i > 0 {
			sb.WriteString(", ")
		}
		if f.Sub != nil {
			sb.WriteString("(" + f.Sub.String() + ")")
		} else {
			sb.WriteString(f.Table)
		}
		if f.Alias != "" {
			sb.WriteString(" as " + f.Alias)
		}
		if f.JoinLeft && f.On != nil {
			sb.WriteString(" on " + f.On.String())
		}
	}
	if b.Where != nil {
		sb.WriteString(" where " + b.Where.String())
	}
	if len(b.GroupBy) > 0 {
		sb.WriteString(" group by ")
		for i, g := range b.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.Name)
		}
	}
	if b.Having != nil {
		sb.WriteString(" having " + b.Having.String())
	}
	if len(b.OrderBy) > 0 {
		sb.WriteString(" order by ")
		for i, k := range b.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k.Name)
			if k.Desc {
				sb.WriteString(" desc")
			}
		}
	}
	if b.Limit >= 0 {
		sb.WriteString(fmt.Sprintf(" limit %d", b.Limit))
	}
	return sb.String()
}

// String renders the statement as canonical SQL text.
func (s *Stmt) String() string {
	var sb strings.Builder
	if len(s.CTEs) > 0 {
		sb.WriteString("with ")
		for i, c := range s.CTEs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.Name + " as (" + c.Sel.String() + ")")
		}
		sb.WriteString(" ")
	}
	sb.WriteString(s.Sel.String())
	return sb.String()
}
