// Package sql implements a SQL frontend for the WimPi engine: a
// stdlib-only lexer and recursive-descent parser for the TPC-H dialect,
// a catalog binder, a lowering pass onto the engine's plan operators,
// and a cost-based optimizer that orders join pipelines and predicts
// build strategies from catalog statistics.
//
// Lowering is canonical: the first FROM item is the probe spine, later
// FROM items attach as hash-join build sides in text order, and WHERE
// conjuncts classify into scan predicates, join edges, semi/anti joins,
// and residual filters. The optimizer then permutes steps only within
// windows where reordering provably cannot change result bytes, so a
// SQL statement always produces output byte-identical to the
// corresponding hand-built plan regardless of cost-model decisions.
package sql

import (
	"wimpi/internal/exec"
	"wimpi/internal/hardware"
	"wimpi/internal/plan"
)

// Options configures planning.
type Options struct {
	// LLCBytes is the last-level-cache budget used to predict join build
	// strategies. Zero selects the engine default; negative disables
	// cache-aware predictions (matching plan.Context semantics).
	LLCBytes int64
	// NoOpt disables the cost-based step reordering; lowering stays
	// canonical (statement text order).
	NoOpt bool
	// UniqueKeys declares base-table unique keys, e.g. tpch.TableKeys().
	// Joins whose build keys form a unique key are order-safe and become
	// candidates for reordering.
	UniqueKeys map[string][]string
}

// Planned is a compiled statement: an executable plan tree plus the
// optimizer's decision report for EXPLAIN.
type Planned struct {
	Node   plan.Node
	Report *Report
}

// Plan parses, binds, lowers and optimizes one SQL statement against a
// catalog. The returned plan runs through plan.Run / plan.RunContext
// like any hand-built tree; CTEs memoize per Plan call, so re-plan for
// each independent run.
func Plan(cat plan.Catalog, text string, o Options) (*Planned, error) {
	stmt, err := Parse(text)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	pl := &planner{
		cat:   cat,
		keys:  o.UniqueKeys,
		ctes:  make(map[string]*cteInfo),
		st:    &stats{cat: cat, ctr: &exec.Counters{}},
		opt:   !o.NoOpt,
		rep:   rep,
		model: hardware.DefaultModel(),
		pi:    hardware.Pi(),
		llc:   resolveLLC(o.LLCBytes),
	}
	for i := range stmt.CTEs {
		c := &stmt.CTEs[i]
		if _, dup := pl.ctes[c.Name]; dup {
			return nil, errAt(c.Pos, "duplicate WITH name %q", c.Name)
		}
		node, bout, err := pl.lowerBlock(c.Sel, nil)
		if err != nil {
			return nil, err
		}
		pl.ctes[c.Name] = &cteInfo{
			name: c.Name,
			cols: bout.cols,
			ukey: bout.ukey,
			memo: &memoNode{name: c.Name, inner: node},
			rows: bout.rows,
		}
	}
	node, _, err := pl.lowerBlock(stmt.Sel, nil)
	if err != nil {
		return nil, err
	}
	return &Planned{Node: node, Report: rep}, nil
}

// resolveLLC mirrors plan.Context's LLC handling so the planner's
// strategy predictions match what the executor will actually do: zero
// means the engine default, negative disables cache-aware paths.
func resolveLLC(llc int64) int64 {
	if llc == 0 {
		return plan.DefaultLLCBytes
	}
	if llc < 0 {
		return 0
	}
	return llc
}
