package sql

import "strconv"

// maxDepth bounds expression/select nesting so adversarial input fails
// with a positioned error instead of exhausting the goroutine stack.
const maxDepth = 200

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks  []token
	i     int
	depth int
}

// Parse parses a statement. It never panics on any input.
func Parse(text string) (*Stmt, error) {
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tEOF {
		return nil, errAt(t.pos, "unexpected %s %q after statement", t.kind, t.text)
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tEOF {
		p.i++
	}
	return t
}

// atKeyword reports whether the next token is the given keyword.
func (p *parser) atKeyword(k string) bool {
	t := p.peek()
	return t.kind == tKeyword && t.text == k
}

// atSymbol reports whether the next token is the given symbol.
func (p *parser) atSymbol(s string) bool {
	t := p.peek()
	return t.kind == tSymbol && t.text == s
}

// eatKeyword consumes the keyword if present.
func (p *parser) eatKeyword(k string) bool {
	if p.atKeyword(k) {
		p.next()
		return true
	}
	return false
}

// eatSymbol consumes the symbol if present.
func (p *parser) eatSymbol(s string) bool {
	if p.atSymbol(s) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(k string) error {
	t := p.peek()
	if t.kind != tKeyword || t.text != k {
		return errAt(t.pos, "expected %q, found %s %q", k, t.kind, t.text)
	}
	p.next()
	return nil
}

func (p *parser) expectSymbol(s string) error {
	t := p.peek()
	if t.kind != tSymbol || t.text != s {
		return errAt(t.pos, "expected %q, found %s %q", s, t.kind, t.text)
	}
	p.next()
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.peek()
	if t.kind != tIdent {
		return token{}, errAt(t.pos, "expected identifier, found %s %q", t.kind, t.text)
	}
	p.next()
	return t, nil
}

// enter guards recursion depth.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return errAt(p.peek().pos, "expression nesting exceeds %d levels", maxDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) parseStmt() (*Stmt, error) {
	stmt := &Stmt{}
	if p.eatKeyword("with") {
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("as"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			stmt.CTEs = append(stmt.CTEs, CTE{Name: name.text, Sel: sel, Pos: name.pos})
			if !p.eatSymbol(",") {
				break
			}
		}
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Sel = sel
	return stmt, nil
}

func (p *parser) parseSelect() (*SelectBlock, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	start := p.peek().pos
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	b := &SelectBlock{Limit: -1, Pos: start}
	for {
		itemPos := p.peek().pos
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := SelectItem{Expr: e, Pos: itemPos}
		if p.eatKeyword("as") {
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			item.Alias = id.text
		}
		b.Items = append(b.Items, item)
		if !p.eatSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	first, err := p.parseFromItem()
	if err != nil {
		return nil, err
	}
	b.From = append(b.From, first)
	for {
		if p.eatSymbol(",") {
			f, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			b.From = append(b.From, f)
			continue
		}
		if p.atKeyword("left") {
			p.next()
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			f, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			f.JoinLeft = true
			if err := p.expectKeyword("on"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.On = on
			b.From = append(b.From, f)
			continue
		}
		break
	}
	if p.eatKeyword("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		b.Where = w
	}
	if p.eatKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			b.GroupBy = append(b.GroupBy, Ident{Name: id.text, Pos: id.pos})
			if !p.eatSymbol(",") {
				break
			}
		}
	}
	if p.eatKeyword("having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		b.Having = h
	}
	if p.eatKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			k := OrderKey{Name: id.text, Pos: id.pos}
			if p.eatKeyword("desc") {
				k.Desc = true
			} else {
				p.eatKeyword("asc")
			}
			b.OrderBy = append(b.OrderBy, k)
			if !p.eatSymbol(",") {
				break
			}
		}
	}
	if p.eatKeyword("limit") {
		t := p.peek()
		if t.kind != tNumber {
			return nil, errAt(t.pos, "expected row count after limit, found %s %q", t.kind, t.text)
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errAt(t.pos, "bad limit %q", t.text)
		}
		b.Limit = n
	}
	return b, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	t := p.peek()
	var f FromItem
	f.Pos = t.pos
	switch {
	case t.kind == tIdent:
		p.next()
		f.Table = t.text
	case t.kind == tSymbol && t.text == "(":
		p.next()
		sel, err := p.parseSelect()
		if err != nil {
			return FromItem{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return FromItem{}, err
		}
		f.Sub = sel
	default:
		return FromItem{}, errAt(t.pos, "expected table name or derived table, found %s %q", t.kind, t.text)
	}
	if p.eatKeyword("as") {
		id, err := p.expectIdent()
		if err != nil {
			return FromItem{}, err
		}
		f.Alias = id.text
	} else if p.peek().kind == tIdent {
		id := p.next()
		f.Alias = id.text
	}
	if f.Sub != nil && f.Alias == "" {
		return FromItem{}, errAt(f.Pos, "derived table needs an alias")
	}
	return f, nil
}

func (p *parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		pos := p.next().pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "or", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		pos := p.next().pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "and", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("not") {
		pos := p.next().pos
		if err := p.enter(); err != nil {
			return nil, err
		}
		e, err := p.parseNot()
		p.leave()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e, Pos: pos}, nil
	}
	return p.parseCmp()
}

// parseCmp parses comparison, IN, BETWEEN, and LIKE at one level.
func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tSymbol {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: t.text, L: l, R: r, Pos: t.pos}, nil
		}
	}
	negate := false
	notPos := t.pos
	if p.atKeyword("not") {
		// `x not in ...` / `x not like ...`
		save := p.i
		p.next()
		if p.atKeyword("in") || p.atKeyword("like") {
			negate = true
		} else {
			p.i = save
			return l, nil
		}
	}
	switch {
	case p.atKeyword("in"):
		pos := p.next().pos
		if negate {
			pos = notPos
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		in := &InExpr{E: l, Negate: negate, Pos: pos}
		if p.atKeyword("select") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			in.Sub = sub
		} else {
			for {
				v, err := p.parseAdd()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, v)
				if !p.eatSymbol(",") {
					break
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.atKeyword("like"):
		pos := p.next().pos
		if negate {
			pos = notPos
		}
		t := p.peek()
		if t.kind != tString {
			return nil, errAt(t.pos, "expected pattern string after like, found %s %q", t.kind, t.text)
		}
		p.next()
		return &LikeExpr{E: l, Pattern: t.text, Negate: negate, Pos: pos}, nil
	case p.atKeyword("between"):
		pos := p.next().pos
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Pos: pos}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.atSymbol("+") || p.atSymbol("-") {
		t := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.text, L: l, R: r, Pos: t.pos}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.atSymbol("*") || p.atSymbol("/") {
		t := p.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.text, L: l, R: r, Pos: t.pos}
	}
	return l, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.peek()
	switch t.kind {
	case tNumber:
		p.next()
		return parseNum(t)
	case tString:
		p.next()
		return &StrLit{V: t.text, Pos: t.pos}, nil
	case tIdent:
		p.next()
		if p.atSymbol("(") {
			// Non-keyword function call (e.g. the distributed-merge
			// aggregate sumi); the binder validates the name.
			p.next()
			fn := &FuncExpr{Name: t.text, Pos: t.pos}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fn.Args = append(fn.Args, a)
				if !p.eatSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fn, nil
		}
		return &ColRef{Name: t.text, Pos: t.pos}, nil
	case tSymbol:
		if t.text == "(" {
			p.next()
			if p.atKeyword("select") {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Sel: sel, Pos: t.pos}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tKeyword:
		switch t.text {
		case "date":
			p.next()
			v := p.peek()
			if v.kind != tString {
				return nil, errAt(v.pos, "expected 'yyyy-mm-dd' after date, found %s %q", v.kind, v.text)
			}
			p.next()
			return &DateLit{V: v.text, Pos: t.pos}, nil
		case "interval":
			p.next()
			v := p.peek()
			if v.kind != tString {
				return nil, errAt(v.pos, "expected quoted count after interval, found %s %q", v.kind, v.text)
			}
			p.next()
			n, err := strconv.ParseInt(v.text, 10, 64)
			if err != nil {
				return nil, errAt(v.pos, "bad interval count %q", v.text)
			}
			u := p.peek()
			if u.kind != tKeyword || (u.text != "day" && u.text != "month" && u.text != "year") {
				return nil, errAt(u.pos, "expected day, month or year, found %s %q", u.kind, u.text)
			}
			p.next()
			return &IntervalLit{N: n, Unit: u.text, Pos: t.pos}, nil
		case "case":
			p.next()
			if err := p.expectKeyword("when"); err != nil {
				return nil, err
			}
			when, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("then"); err != nil {
				return nil, err
			}
			then, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("else"); err != nil {
				return nil, err
			}
			els, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("end"); err != nil {
				return nil, err
			}
			return &CaseExpr{When: when, Then: then, Else: els, Pos: t.pos}, nil
		case "sum", "count", "avg", "min", "max", "year", "substring":
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			fn := &FuncExpr{Name: t.text, Pos: t.pos}
			if t.text == "count" && p.eatSymbol("*") {
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return fn, nil
			}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fn.Args = append(fn.Args, a)
				if !p.eatSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fn, nil
		}
	}
	return nil, errAt(t.pos, "expected expression, found %s %q", t.kind, t.text)
}

// parseNum builds a NumLit from a number token.
func parseNum(t token) (Expr, error) {
	if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
		return &NumLit{Text: t.text, IsInt: true, Int: i, Float: float64(i), Pos: t.pos}, nil
	}
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return nil, errAt(t.pos, "bad number %q", t.text)
	}
	return &NumLit{Text: t.text, Float: f, Pos: t.pos}, nil
}
