package sql_test

import (
	"fmt"
	"strings"
	"testing"

	"wimpi/internal/sql"
	"wimpi/internal/tpch"
)

// TestDistributeGolden freezes the two-phase decomposition of Q1 (the
// aggregate-heavy query: sums re-sum, count becomes sumi, and each avg
// splits into a hidden sum + count pair recombined at merge) and Q14
// (arithmetic over aggregates split around hidden partial columns).
func TestDistributeGolden(t *testing.T) {
	var b strings.Builder
	for _, q := range []int{1, 14} {
		text, err := tpch.SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		d, err := sql.Distribute(text)
		if err != nil {
			t.Fatalf("Q%d: %v", q, err)
		}
		if d.SingleNode {
			t.Fatalf("Q%d distributed as single-node", q)
		}
		fmt.Fprintf(&b, "-- Q%d partial --\n%s\n-- Q%d merge --\n%s\n", q, d.Partial, q, d.Merge)
	}
	golden(t, "distribute.golden", b.String())
}

// TestDistributeSingleNode: a statement that never touches the
// partitioned lineitem table ships verbatim to one node (Q13).
func TestDistributeSingleNode(t *testing.T) {
	text, err := tpch.SQL(13)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sql.Distribute(text)
	if err != nil {
		t.Fatal(err)
	}
	if !d.SingleNode || d.Partial != text || d.Merge != "" {
		t.Fatalf("Q13 should be single-node verbatim, got %+v", d)
	}
}

// TestDistributeRepresentative: every representative query decomposes,
// and both halves are themselves parseable statements.
func TestDistributeRepresentative(t *testing.T) {
	for _, q := range tpch.RepresentativeQueries {
		text, err := tpch.SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		d, err := sql.Distribute(text)
		if err != nil {
			t.Fatalf("Q%d: %v", q, err)
		}
		if d.SingleNode {
			continue
		}
		if !strings.Contains(d.Merge, "from partials") {
			t.Errorf("Q%d merge does not read the partials table: %s", q, d.Merge)
		}
	}
}

// TestDistributeErrors: statements the rewrite cannot distribute fail
// with positioned, specific errors instead of producing wrong answers.
func TestDistributeErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"with-clause", `with x as (select l_orderkey from lineitem) select l_orderkey from x`,
			"WITH clauses are not distributable"},
		{"having", `select l_orderkey, sum(l_quantity) as s from lineitem group by l_orderkey having s > 5`,
			"HAVING is not distributable"},
		{"non-agg-item", `select l_orderkey, l_partkey from lineitem group by l_orderkey`,
			"no aggregate"},
		{"parse-error", `select from lineitem`, "sql:"},
	}
	for _, c := range cases {
		_, err := sql.Distribute(c.text)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
