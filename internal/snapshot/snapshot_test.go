package snapshot

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"wimpi/internal/colstore"
	"wimpi/internal/tpch"
)

func sampleTable() *colstore.Table {
	b := colstore.NewTableBuilder("sample", colstore.Schema{
		{Name: "i", Type: colstore.Int64},
		{Name: "f", Type: colstore.Float64},
		{Name: "d", Type: colstore.Date},
		{Name: "s", Type: colstore.String},
		{Name: "bo", Type: colstore.Bool},
	})
	vals := []string{"alpha", "beta", "", "gamma"}
	for i := 0; i < 100; i++ {
		b.Int(0, int64(i)*(-1000000007))
		b.Float(1, float64(i)/7)
		b.Date(2, int32(i-50))
		b.Str(3, vals[i%len(vals)])
		b.Bool(4, i%3 == 0)
		b.EndRow()
	}
	return b.Build()
}

func TestTableRoundTrip(t *testing.T) {
	orig := sampleTable()
	var buf bytes.Buffer
	if err := WriteTable(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.NumRows() != orig.NumRows() || got.NumCols() != orig.NumCols() {
		t.Fatalf("shape mismatch: %s %dx%d", got.Name, got.NumRows(), got.NumCols())
	}
	for c := 0; c < orig.NumCols(); c++ {
		if got.Schema[c] != orig.Schema[c] {
			t.Fatalf("schema[%d] = %v, want %v", c, got.Schema[c], orig.Schema[c])
		}
	}
	for r := 0; r < orig.NumRows(); r++ {
		if got.MustCol("i").(*colstore.Int64s).V[r] != orig.MustCol("i").(*colstore.Int64s).V[r] ||
			got.MustCol("f").(*colstore.Float64s).V[r] != orig.MustCol("f").(*colstore.Float64s).V[r] ||
			got.MustCol("d").(*colstore.Dates).V[r] != orig.MustCol("d").(*colstore.Dates).V[r] ||
			got.MustCol("s").(*colstore.Strings).Value(r) != orig.MustCol("s").(*colstore.Strings).Value(r) ||
			got.MustCol("bo").(*colstore.Bools).V[r] != orig.MustCol("bo").(*colstore.Bools).V[r] {
			t.Fatalf("row %d differs", r)
		}
	}
}

func TestSpecialFloatsSurvive(t *testing.T) {
	b := colstore.NewTableBuilder("t", colstore.Schema{{Name: "f", Type: colstore.Float64}})
	for _, v := range []float64{0, math.Inf(1), math.Inf(-1), math.NaN(), -0.0, 1e-300} {
		b.Float(0, v)
		b.EndRow()
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, b.Build()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v := got.MustCol("f").(*colstore.Float64s).V
	if !math.IsInf(v[1], 1) || !math.IsInf(v[2], -1) || !math.IsNaN(v[3]) {
		t.Errorf("special floats lost: %v", v)
	}
}

func TestRLEColumnsSnapshotDense(t *testing.T) {
	dense := &colstore.Int64s{V: []int64{5, 5, 5, 9, 9}}
	tbl := colstore.MustNewTable("t", colstore.Schema{{Name: "k", Type: colstore.Int64}},
		[]colstore.Column{colstore.CompressInt64(dense)})
	var buf bytes.Buffer
	if err := WriteTable(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v := got.MustCol("k").(*colstore.Int64s).V
	for i := range dense.V {
		if v[i] != dense.V[i] {
			t.Fatalf("row %d: %d vs %d", i, v[i], dense.V[i])
		}
	}
}

func TestCorruptionDetection(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable(&buf, sampleTable()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), full...)
	bad[0] ^= 0xFF
	if _, err := ReadTable(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), full...)
	bad[4] = 99
	if _, err := ReadTable(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncation anywhere must error, not panic.
	for _, cut := range []int{3, 10, len(full) / 2, len(full) - 1} {
		if _, err := ReadTable(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Empty input.
	if _, err := ReadTable(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestDatasetSaveLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	d := tpch.Generate(tpch.Config{SF: 0.002, Seed: 77})
	if err := SaveDataset(dir, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config.SF != 0.002 || got.Config.Seed != 77 {
		t.Errorf("manifest round trip: %+v", got.Config)
	}
	for _, name := range tpch.TableNames {
		a, b := d.Tables[name], got.Tables[name]
		if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
			t.Fatalf("%s: shape mismatch", name)
		}
	}
	// Spot-check lineitem content.
	a := d.Tables["lineitem"].MustCol("l_extendedprice").(*colstore.Float64s).V
	b := got.Tables["lineitem"].MustCol("l_extendedprice").(*colstore.Float64s).V
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lineitem row %d differs", i)
		}
	}
	// Loading a missing directory errors.
	if _, err := LoadDataset(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestEmptyTableRoundTrip(t *testing.T) {
	empty := colstore.NewTableBuilder("e", colstore.Schema{
		{Name: "s", Type: colstore.String},
		{Name: "i", Type: colstore.Int64},
	}).Build()
	var buf bytes.Buffer
	if err := WriteTable(&buf, empty); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil || got.NumRows() != 0 || got.NumCols() != 2 {
		t.Fatalf("empty round trip: %v", err)
	}
}
