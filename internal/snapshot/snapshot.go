// Package snapshot persists columnar tables and TPC-H datasets in a
// compact binary format, so large generated datasets (an SF 1 build
// takes a minute of CPU) can be written once and reloaded in seconds —
// the role HDFS played for data distribution in the paper's cluster.
//
// Format (little endian):
//
//	file   := magic u32 | version u16 | name str | ncols u16 | column*
//	column := name str | type u8 | rows u32 | payload
//	str    := len u16 | bytes
//
// Int64/Float64 payloads are raw 8-byte values; dates are 4-byte; bools
// are single bytes; string columns are a dictionary (count u32, str*)
// followed by 4-byte codes. A CRC-less format keeps it simple; a
// truncated or corrupt file fails with a descriptive error.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"wimpi/internal/colstore"
	"wimpi/internal/tpch"
)

const (
	magic   = 0x57494D50 // "WIMP"
	version = 1
)

// WriteTable serializes t to w.
func WriteTable(w io.Writer, t *colstore.Table) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := binary.Write(bw, binary.LittleEndian, uint32(magic)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(version)); err != nil {
		return err
	}
	if err := writeStr(bw, t.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(t.NumCols())); err != nil {
		return err
	}
	for i, f := range t.Schema {
		if err := writeStr(bw, f.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(f.Type)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(t.NumRows())); err != nil {
			return err
		}
		if err := writeColumn(bw, t.Cols[i]); err != nil {
			return fmt.Errorf("snapshot: column %s: %w", f.Name, err)
		}
	}
	return bw.Flush()
}

func writeColumn(w *bufio.Writer, c colstore.Column) error {
	switch col := c.(type) {
	case *colstore.Int64s:
		for _, v := range col.V {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	case *colstore.Float64s:
		for _, v := range col.V {
			if err := binary.Write(w, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	case *colstore.Dates:
		for _, v := range col.V {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	case *colstore.Bools:
		for _, v := range col.V {
			b := byte(0)
			if v {
				b = 1
			}
			if err := w.WriteByte(b); err != nil {
				return err
			}
		}
	case *colstore.Strings:
		vals := col.Dict.Values()
		if err := binary.Write(w, binary.LittleEndian, uint32(len(vals))); err != nil {
			return err
		}
		for _, v := range vals {
			if err := writeStr(w, v); err != nil {
				return err
			}
		}
		for _, code := range col.Codes {
			if err := binary.Write(w, binary.LittleEndian, code); err != nil {
				return err
			}
		}
	case *colstore.RLEInt64:
		// Snapshots store the dense form; re-compress after loading.
		return writeColumn(w, col.Decode())
	default:
		return fmt.Errorf("unsupported column type %T", c)
	}
	return nil
}

// ReadTable deserializes a table from r.
func ReadTable(r io.Reader) (*colstore.Table, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("snapshot: read magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("snapshot: bad magic 0x%08X", m)
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("snapshot: unsupported version %d", ver)
	}
	name, err := readStr(br)
	if err != nil {
		return nil, err
	}
	var ncols uint16
	if err := binary.Read(br, binary.LittleEndian, &ncols); err != nil {
		return nil, err
	}
	schema := make(colstore.Schema, ncols)
	cols := make([]colstore.Column, ncols)
	for i := 0; i < int(ncols); i++ {
		cname, err := readStr(br)
		if err != nil {
			return nil, err
		}
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		var rows uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return nil, err
		}
		ty := colstore.Type(tb)
		col, err := readColumn(br, ty, int(rows))
		if err != nil {
			return nil, fmt.Errorf("snapshot: column %s: %w", cname, err)
		}
		schema[i] = colstore.Field{Name: cname, Type: ty}
		cols[i] = col
	}
	return colstore.NewTable(name, schema, cols)
}

func readColumn(r *bufio.Reader, ty colstore.Type, rows int) (colstore.Column, error) {
	switch ty {
	case colstore.Int64:
		v := make([]int64, rows)
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, err
		}
		return &colstore.Int64s{V: v}, nil
	case colstore.Float64:
		bits := make([]uint64, rows)
		if err := binary.Read(r, binary.LittleEndian, bits); err != nil {
			return nil, err
		}
		v := make([]float64, rows)
		for i, b := range bits {
			v[i] = math.Float64frombits(b)
		}
		return &colstore.Float64s{V: v}, nil
	case colstore.Date:
		v := make([]int32, rows)
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, err
		}
		return &colstore.Dates{V: v}, nil
	case colstore.Bool:
		raw := make([]byte, rows)
		if _, err := io.ReadFull(r, raw); err != nil {
			return nil, err
		}
		v := make([]bool, rows)
		for i, b := range raw {
			v[i] = b != 0
		}
		return &colstore.Bools{V: v}, nil
	case colstore.String:
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		dict := colstore.NewDict()
		for i := 0; i < int(n); i++ {
			s, err := readStr(r)
			if err != nil {
				return nil, err
			}
			dict.Add(s)
		}
		codes := make([]int32, rows)
		if err := binary.Read(r, binary.LittleEndian, codes); err != nil {
			return nil, err
		}
		for _, c := range codes {
			if c < 0 || int(c) >= dict.Len() {
				return nil, fmt.Errorf("dictionary code %d out of range", c)
			}
		}
		return &colstore.Strings{Codes: codes, Dict: dict}, nil
	default:
		return nil, fmt.Errorf("unknown column type %d", ty)
	}
}

func writeStr(w *bufio.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("snapshot: string too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readStr(r *bufio.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// SaveDataset writes every table of d into dir (one .wimpi file per
// table) plus a manifest recording the generation parameters.
func SaveDataset(dir string, d *tpch.Dataset) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, t := range d.Tables {
		f, err := os.Create(filepath.Join(dir, name+".wimpi"))
		if err != nil {
			return err
		}
		if err := WriteTable(f, t); err != nil {
			f.Close()
			return fmt.Errorf("snapshot: save %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	manifest := fmt.Sprintf("sf=%g\nseed=%d\n", d.Config.SF, d.Config.Seed)
	return os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte(manifest), 0o644)
}

// LoadDataset reads a dataset previously written by SaveDataset.
func LoadDataset(dir string) (*tpch.Dataset, error) {
	mf, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var cfg tpch.Config
	if _, err := fmt.Sscanf(string(mf), "sf=%g\nseed=%d", &cfg.SF, &cfg.Seed); err != nil {
		return nil, fmt.Errorf("snapshot: parse manifest: %w", err)
	}
	d := &tpch.Dataset{Tables: make(map[string]*colstore.Table, len(tpch.TableNames)), Config: cfg}
	for _, name := range tpch.TableNames {
		f, err := os.Open(filepath.Join(dir, name+".wimpi"))
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		t, err := ReadTable(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("snapshot: load %s: %w", name, err)
		}
		d.Tables[name] = t
	}
	return d, nil
}
