package obs

import (
	"strings"
	"sync"
	"testing"

	"wimpi/internal/exec"
)

func TestRegistryCountersGaugesConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wimpi_test_events_total")
	g := r.Gauge("wimpi_test_depth")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() < 0 || g.Value() > 999 {
		t.Errorf("gauge = %d, want in [0,999]", g.Value())
	}
	// Same name returns the same instrument.
	if r.Counter("wimpi_test_events_total") != c {
		t.Error("Counter did not return the cached instrument")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("wimpi_test_x")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge under a counter name should panic")
		}
	}()
	r.Gauge("wimpi_test_x")
}

func TestHistogramBucketsAndExport(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wimpi_test_latency_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got != 5.555 {
		t.Errorf("sum = %g, want 5.555", got)
	}
	r.Counter("wimpi_test_a_total").Add(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE wimpi_test_a_total counter",
		"wimpi_test_a_total 3",
		"# TYPE wimpi_test_latency_seconds histogram",
		`wimpi_test_latency_seconds_bucket{le="0.01"} 1`,
		`wimpi_test_latency_seconds_bucket{le="0.1"} 2`,
		`wimpi_test_latency_seconds_bucket{le="1"} 3`,
		`wimpi_test_latency_seconds_bucket{le="+Inf"} 4`,
		"wimpi_test_latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	// Sorted output: a_total must precede latency_seconds.
	if strings.Index(out, "wimpi_test_a_total") > strings.Index(out, "wimpi_test_latency_seconds") {
		t.Errorf("export not sorted by name:\n%s", out)
	}
}

// TestLabeledMetricsExport pins the per-tenant metric contract: labeled
// names render as one series per label value under a single TYPE line,
// histogram buckets merge the label with le, and label values escape
// quotes and backslashes.
func TestLabeledMetricsExport(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("wimpi_test_q_total", "tenant", "red")).Add(2)
	r.Counter(Labeled("wimpi_test_q_total", "tenant", "blue")).Add(5)
	h := r.Histogram(Labeled("wimpi_test_lat_seconds", "tenant", "red"), []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	r.Counter(Labeled("wimpi_test_esc_total", "tenant", `we"ird\`)).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`wimpi_test_q_total{tenant="red"} 2`,
		`wimpi_test_q_total{tenant="blue"} 5`,
		`wimpi_test_lat_seconds_bucket{tenant="red",le="0.1"} 1`,
		`wimpi_test_lat_seconds_bucket{tenant="red",le="+Inf"} 2`,
		`wimpi_test_lat_seconds_sum{tenant="red"} 0.55`,
		`wimpi_test_lat_seconds_count{tenant="red"} 2`,
		`wimpi_test_esc_total{tenant="we\"ird\\"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# TYPE wimpi_test_q_total counter"); got != 1 {
		t.Errorf("TYPE for wimpi_test_q_total appears %d times, want 1:\n%s", got, out)
	}
}

// TestTracerHook: the Begin hook fires with the span's op and label
// before the span opens, and a nil hook is a no-op.
func TestTracerHook(t *testing.T) {
	var ctr exec.Counters
	tr := NewTracer(&ctr)
	var got []string
	tr.Hook = func(op, label string) { got = append(got, op+":"+label) }
	sp := tr.Begin("scan", "scan t")
	tr.End(sp, 1, 8)
	sp = tr.Begin("sort", "sort t")
	tr.End(sp, 1, 8)
	if len(got) != 2 || got[0] != "scan:scan t" || got[1] != "sort:sort t" {
		t.Fatalf("hook calls = %v", got)
	}
}
