package obs

import (
	"strings"
	"testing"

	"wimpi/internal/exec"
	"wimpi/internal/hardware"
)

// goldenTree builds a small fixed span tree: a group-by over a filtered
// scan, with the scan's gather broken out. All counters are hand-picked
// so the rendering is fully deterministic once wall time is masked.
func goldenTree() *Span {
	var ctr exec.Counters
	tr := NewTracer(&ctr)
	root := tr.Begin("group-by", "group by l_returnflag sum(l_quantity)")
	scan := tr.Begin("scan", "scan lineitem where l_shipdate < 1998-09-02")
	gat := tr.Begin("gather", "gather 59000 rows x 4 cols")
	ctr.TuplesMaterialized += 59000
	ctr.BytesMaterialized += 59000 * 32
	ctr.SeqBytes += 59000 * 32
	ctr.RandomAccesses += 59000 * 4
	tr.End(gat, 59000, 59000*32)
	ctr.TuplesScanned += 60000
	ctr.SeqBytes += 60000 * 40
	ctr.IntOps += 60000
	tr.End(scan, 59000, 59000*32)
	ctr.AggUpdates += 59000
	ctr.FloatOps += 59000
	ctr.RandomAccesses += 59000
	tr.End(root, 4, 4*48)
	return tr.Root()
}

func TestExplainAnalyzeGolden(t *testing.T) {
	pi := hardware.Pi()
	got := ExplainAnalyze(goldenTree(), ExplainOptions{
		Profile:  &pi,
		Model:    hardware.DefaultModel(),
		DOP:      4,
		MaskWall: true,
	})
	const want = `operator                                           rows       wall  wall%  sim(Pi 3B+)   sim%     bound
group by l_returnflag sum(l_quantity)                 4   <wall>  <pct>      0.0008s  18.4%  mem-rand
  scan lineitem where l_shipdate < 1998-0...      59000   <wall>  <pct>      0.0009s  21.1%   mem-seq
    gather 59000 rows x 4 cols                    59000   <wall>  <pct>      0.0027s  60.6%  mem-rand
total: 3 operators, 0.0044s simulated on Pi 3B+ (+0.030s per-query overhead)
`
	if got != want {
		t.Errorf("rendering diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExplainAnalyzeWithoutProfileOmitsSimColumns(t *testing.T) {
	got := ExplainAnalyze(goldenTree(), ExplainOptions{MaskWall: true})
	if strings.Contains(got, "sim(") || strings.Contains(got, "bound") {
		t.Errorf("profile-less rendering should omit simulated columns:\n%s", got)
	}
	if !strings.Contains(got, "scan lineitem") {
		t.Errorf("rendering missing operator label:\n%s", got)
	}
}

func TestExplainAnalyzeNilRoot(t *testing.T) {
	if got := ExplainAnalyze(nil, ExplainOptions{}); !strings.Contains(got, "no spans") {
		t.Errorf("nil root rendering = %q", got)
	}
}
