// Package obs is the engine's zero-dependency observability layer:
// operator spans (per-query trace trees carrying wall time, row counts,
// and exec.Counters deltas) and a lock-cheap metrics registry with a
// Prometheus-text export.
//
// The paper's central claims attribute each query's time to a specific
// bottleneck (Q1 memory-bound, Q11/Q16 CPU-bound); spans make that
// attribution inspectable per operator instead of per query, and the
// registry exposes the cluster runtime's health (RPC latencies, retries,
// re-dispatches, injected faults) without pulling in any external
// dependency.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; updates are a single atomic add.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depths, sizes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed cumulative buckets. The
// hot path is one binary search plus two atomic adds; bucket bounds are
// immutable after construction.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

// DefaultLatencyBuckets covers 100µs .. ~100s in powers of ~4, a useful
// range for both local RPCs and thrashing wimpy nodes.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384, 6.5536, 26.2144,
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry is a named collection of metrics. Instrument creation takes a
// mutex (callers cache the returned instrument); updates are lock-free.
type Registry struct {
	mu     sync.Mutex
	names  []string // registration order is irrelevant; export sorts
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Default is the process-wide registry used by the engine, the cluster
// runtime, and the CLIs' -metrics-out dumps.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use. A name
// registered as a different metric kind panics: metric names are a
// global contract.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return c
	}
	r.mustBeFresh(name)
	c := &Counter{}
	r.counts[name] = c
	r.names = append(r.names, name)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.mustBeFresh(name)
	g := &Gauge{}
	r.gauges[name] = g
	r.names = append(r.names, name)
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.mustBeFresh(name)
	h := newHistogram(bounds)
	r.hists[name] = h
	r.names = append(r.names, name)
	return h
}

// Labeled returns a decorated metric name carrying one label pair —
// `name{label="value"}` — for per-tenant (or otherwise partitioned)
// series. The export layer splits the decoration back out, so the
// Prometheus text output stays well-formed: the TYPE line uses the base
// name, and histogram bucket lines merge the label with le. Quotes and
// backslashes in the value are escaped.
func Labeled(name, label, value string) string {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`).Replace(value)
	return fmt.Sprintf(`%s{%s="%s"}`, name, label, esc)
}

// splitLabeled separates a Labeled-decorated name into its base name and
// the `label="value"` body; plain names return labels == "".
func splitLabeled(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

func (r *Registry) mustBeFresh(name string) {
	_, c := r.counts[name]
	_, g := r.gauges[name]
	_, h := r.hists[name]
	if c || g || h {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
}

// WritePrometheus renders every metric in Prometheus text exposition
// format, sorted by name so dumps are diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	sort.Strings(names)
	var b strings.Builder
	typedBases := map[string]bool{}
	for _, name := range names {
		r.mu.Lock()
		c, isC := r.counts[name]
		g, isG := r.gauges[name]
		h, isH := r.hists[name]
		r.mu.Unlock()
		base, labels := splitLabeled(name)
		series := base
		if labels != "" {
			series = base + "{" + labels + "}"
		}
		typed := !typedBases[base]
		typedBases[base] = true
		switch {
		case isC:
			if typed {
				fmt.Fprintf(&b, "# TYPE %s counter\n", base)
			}
			fmt.Fprintf(&b, "%s %d\n", series, c.Value())
		case isG:
			if typed {
				fmt.Fprintf(&b, "# TYPE %s gauge\n", base)
			}
			fmt.Fprintf(&b, "%s %d\n", series, g.Value())
		case isH:
			if typed {
				fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
			}
			bucketSep := "le="
			if labels != "" {
				bucketSep = labels + ",le="
			}
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{%s%q} %d\n", base, bucketSep, formatBound(bound), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket{%s\"+Inf\"} %d\n", base, bucketSep, cum)
			fmt.Fprintf(&b, "%s_sum%s %g\n", base, labelSuffix(labels), h.Sum())
			fmt.Fprintf(&b, "%s_count%s %d\n", base, labelSuffix(labels), h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatBound(v float64) string { return fmt.Sprintf("%g", v) }

func labelSuffix(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}
