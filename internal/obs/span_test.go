package obs

import (
	"testing"

	"wimpi/internal/exec"
)

func TestTracerBuildsNestedTreeWithCounterDeltas(t *testing.T) {
	var ctr exec.Counters
	tr := NewTracer(&ctr)

	root := tr.Begin("sort", "order by x")
	child := tr.Begin("scan", "scan t")
	ctr.SeqBytes += 100
	ctr.TuplesScanned += 10
	tr.End(child, 10, 80)
	ctr.IntOps += 42
	tr.End(root, 10, 80)

	got := tr.Root()
	if got != root || len(got.Children) != 1 || got.Children[0] != child {
		t.Fatalf("tree shape wrong: %+v", got)
	}
	if child.Counters.SeqBytes != 100 || child.Counters.TuplesScanned != 10 {
		t.Errorf("child counters = %+v", child.Counters)
	}
	if root.Counters.IntOps != 42 || root.Counters.SeqBytes != 100 {
		t.Errorf("root inclusive counters = %+v", root.Counters)
	}
	self := root.SelfCounters()
	if self.SeqBytes != 0 || self.IntOps != 42 || self.TuplesScanned != 0 {
		t.Errorf("root self counters = %+v", self)
	}
	if root.Rows != 10 || child.Rows != 10 || child.Bytes != 80 {
		t.Errorf("rows/bytes wrong: root=%+v child=%+v", root, child)
	}
	if root.NumSpans() != 2 {
		t.Errorf("NumSpans = %d, want 2", root.NumSpans())
	}
}

func TestTracerOuterEndClosesInnerAsErrored(t *testing.T) {
	var ctr exec.Counters
	tr := NewTracer(&ctr)
	root := tr.Begin("a", "a")
	inner := tr.Begin("b", "b")
	tr.End(root, 1, 1) // inner never ended explicitly
	if !inner.Err {
		t.Error("inner span should be marked errored when closed implicitly")
	}
	if root.Err {
		t.Error("root closed cleanly, should not be errored")
	}
}

func TestSecondTopLevelSpanAdoptedUnderRoot(t *testing.T) {
	var ctr exec.Counters
	tr := NewTracer(&ctr)
	a := tr.Begin("node", "node 0")
	tr.End(a, 1, 1)
	b := tr.Begin("merge", "merge partials")
	tr.End(b, 1, 1)
	root := tr.Root()
	if root != a || len(root.Children) != 1 || root.Children[0] != b {
		t.Fatalf("second top-level span not adopted: %+v", root)
	}
}

func TestWalkPreOrder(t *testing.T) {
	var ctr exec.Counters
	tr := NewTracer(&ctr)
	r := tr.Begin("r", "r")
	c1 := tr.Begin("c1", "c1")
	tr.End(c1, 0, 0)
	c2 := tr.Begin("c2", "c2")
	g := tr.Begin("g", "g")
	tr.End(g, 0, 0)
	tr.End(c2, 0, 0)
	tr.End(r, 0, 0)

	var ops []string
	var depths []int
	tr.Root().Walk(func(s *Span, d int) { ops = append(ops, s.Op); depths = append(depths, d) })
	wantOps := []string{"r", "c1", "c2", "g"}
	wantDepth := []int{0, 1, 1, 2}
	for i := range wantOps {
		if i >= len(ops) || ops[i] != wantOps[i] || depths[i] != wantDepth[i] {
			t.Fatalf("walk order = %v %v, want %v %v", ops, depths, wantOps, wantDepth)
		}
	}
}
