package obs

import (
	"fmt"
	"strings"
	"time"
)

// PlanChoice records one cost-based optimizer decision: the pipeline it
// applies to, the canonical (statement-text-order) alternative, the
// chosen one, and the modeled cost of each. Costs come from the hardware
// model's single-core simulation of the planner's cardinality estimates,
// so they depend only on catalog statistics — never on the worker count.
type PlanChoice struct {
	// Pipeline labels the decision site, e.g. "spine partsupp".
	Pipeline string
	// Canonical is the text-order step sequence.
	Canonical string
	// Chosen is the selected step sequence.
	Chosen string
	// CanonicalCost and ChosenCost are modeled single-core runtimes.
	CanonicalCost time.Duration
	ChosenCost    time.Duration
	// Reordered is true when Chosen differs from Canonical.
	Reordered bool
	// Notes carries per-step strategy predictions (radix vs chained
	// build, Bloom pre-filter) for the chosen order.
	Notes []string
}

// RenderPlanChoices renders optimizer decisions for EXPLAIN output,
// ASCII-only so goldens are stable across terminals.
func RenderPlanChoices(choices []PlanChoice) string {
	if len(choices) == 0 {
		return "optimizer: no join-order choices\n"
	}
	var sb strings.Builder
	for _, c := range choices {
		fmt.Fprintf(&sb, "optimizer: %s\n", c.Pipeline)
		fmt.Fprintf(&sb, "  canonical: %-60s (est %s)\n", c.Canonical, fmtCost(c.CanonicalCost))
		if c.Reordered {
			fmt.Fprintf(&sb, "  chosen:    %-60s (est %s)\n", c.Chosen, fmtCost(c.ChosenCost))
		} else {
			fmt.Fprintf(&sb, "  chosen:    canonical order kept\n")
		}
		for _, n := range c.Notes {
			fmt.Fprintf(&sb, "    %s\n", n)
		}
	}
	return sb.String()
}

// fmtCost renders a modeled cost with microsecond granularity so small
// float jitter in estimates does not churn golden output.
func fmtCost(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
