package obs

import (
	"fmt"
	"strings"
	"time"

	"wimpi/internal/hardware"
)

// ExplainOptions parameterize the EXPLAIN ANALYZE rendering of a span
// tree.
type ExplainOptions struct {
	// Profile selects the hardware the simulated columns are computed
	// for; nil omits the simulated columns entirely.
	Profile *hardware.Profile
	// Model converts counters to simulated time (zero value is unusable;
	// pass hardware.DefaultModel()).
	Model hardware.Model
	// DOP is the degree of parallelism for the simulation; <= 0 means
	// all of the profile's cores.
	DOP int
	// MaskWall replaces measured wall-clock fields with a fixed
	// placeholder so renderings are byte-stable for golden tests.
	MaskWall bool
}

const wallMask = "   <wall>  <pct>"

// ExplainAnalyze renders a span tree as an EXPLAIN ANALYZE table: one
// row per operator with output rows, self wall time and share, and —
// when a profile is given — self simulated time on that hardware, its
// share, and the resource that bounds the operator. Wall times are
// measured; every other column is deterministic.
func ExplainAnalyze(root *Span, opt ExplainOptions) string {
	if root == nil {
		return "(no spans recorded)\n"
	}
	var totalWall time.Duration
	var totalSim time.Duration
	root.Walk(func(sp *Span, _ int) {
		totalWall += sp.SelfWall()
		if opt.Profile != nil {
			totalSim += opt.Model.OperatorTime(opt.Profile, sp.SelfCounters(), opt.DOP)
		}
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %10s %10s %6s", "operator", "rows", "wall", "wall%")
	if opt.Profile != nil {
		fmt.Fprintf(&b, " %12s %6s %9s", "sim("+opt.Profile.Name+")", "sim%", "bound")
	}
	b.WriteString("\n")
	root.Walk(func(sp *Span, depth int) {
		label := strings.Repeat("  ", depth) + sp.Label
		if len(label) > 44 {
			label = label[:41] + "..."
		}
		if sp.Err {
			label += " !"
		}
		fmt.Fprintf(&b, "%-44s %10d", label, sp.Rows)
		if opt.MaskWall {
			b.WriteString(wallMask)
		} else {
			fmt.Fprintf(&b, " %10s %5.1f%%",
				sp.SelfWall().Round(time.Microsecond), pct(float64(sp.SelfWall()), float64(totalWall)))
		}
		if opt.Profile != nil {
			self := sp.SelfCounters()
			simSelf := opt.Model.OperatorTime(opt.Profile, self, opt.DOP)
			bd := opt.Model.Explain(opt.Profile, self, opt.DOP)
			fmt.Fprintf(&b, " %11.4fs %5.1f%% %9s",
				simSelf.Seconds(), pct(float64(simSelf), float64(totalSim)), bd.Dominant())
		}
		b.WriteString("\n")
	})
	if opt.MaskWall {
		fmt.Fprintf(&b, "total: %d operators", root.NumSpans())
	} else {
		fmt.Fprintf(&b, "total: %d operators, %s wall", root.NumSpans(), totalWall.Round(time.Microsecond))
	}
	if opt.Profile != nil {
		fmt.Fprintf(&b, ", %.4fs simulated on %s (+%.3fs per-query overhead)",
			totalSim.Seconds(), opt.Profile.Name, opt.Model.Explain(opt.Profile, root.Counters, opt.DOP).OverheadSeconds)
	}
	b.WriteString("\n")
	return b.String()
}

func pct(part, total float64) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * part / total
}
