package obs

import (
	"sync"
	"time"

	"wimpi/internal/exec"
)

// Span records one operator's execution inside a query trace: its wall
// time, output cardinality and footprint, and the snapshot delta of
// exec.Counters charged while it (and its children) ran.
//
// Measurements are stored inclusive of children; SelfWall and
// SelfCounters subtract the direct children, so per-operator attribution
// never double-counts. Wall time is measured and purely informational;
// rows, bytes, and counters are deterministic — morsel workers
// accumulate into per-worker Counters that exec.RunMorsels merges in
// morsel order, so a span's counter delta is bit-identical at every
// degree of parallelism that takes the same kernel paths.
type Span struct {
	// Op is the operator kind ("scan", "sort", "group-by", "hash-join",
	// "join-build", "join-probe", "exchange", "node", "merge", ...).
	Op string
	// Label is the operator's one-line description, e.g. "scan lineitem".
	Label string
	// Rows is the operator's output cardinality.
	Rows int64
	// Bytes is the operator's output footprint.
	Bytes int64
	// Wall is the wall-clock time spent in the operator, including its
	// children. Informational only: never compared, never fed back into
	// results.
	Wall time.Duration
	// Counters is the work charged while the span was open, including
	// children.
	Counters exec.Counters
	// Err records whether the operator failed.
	Err bool
	// Children are the sub-operator spans, in execution order.
	Children []*Span

	start  time.Time
	before exec.Counters
}

// SelfWall is the span's wall time excluding its direct children.
func (s *Span) SelfWall() time.Duration {
	d := s.Wall
	for _, c := range s.Children {
		d -= c.Wall
	}
	if d < 0 {
		d = 0
	}
	return d
}

// SelfCounters is the span's counter delta excluding its direct
// children. Max-style fields (MaxHashBytes, PeakLiveBytes) are
// high-water marks and keep the span's own inclusive value.
func (s *Span) SelfCounters() exec.Counters {
	c := s.Counters
	for _, ch := range s.Children {
		c = exec.DiffCounters(ch.Counters, c)
	}
	return c
}

// NumSpans counts the spans in the tree rooted at s.
func (s *Span) NumSpans() int {
	n := 1
	for _, c := range s.Children {
		n += c.NumSpans()
	}
	return n
}

// Walk visits the tree in pre-order (parents before children, children
// in execution order), calling fn with each span and its depth.
func (s *Span) Walk(fn func(sp *Span, depth int)) { s.walk(fn, 0) }

func (s *Span) walk(fn func(sp *Span, depth int), depth int) {
	fn(s, depth)
	for _, c := range s.Children {
		c.walk(fn, depth+1)
	}
}

// Tracer builds a span tree while a query executes. Begin/End pairs
// nest; the tracer snapshots the live counter set around each span.
// All methods are safe for concurrent use, though the engine's
// operator-at-a-time executor opens spans sequentially (morsel
// parallelism lives inside kernels, below the span layer, and merges
// its per-worker counters in morsel order before a span closes).
type Tracer struct {
	// Hook, when non-nil, observes every Begin before the span opens.
	// It exists for deterministic tests that need to act at an exact
	// pipeline stage (e.g. cancel a query the moment its sort starts);
	// production tracers leave it nil. Set it before the query runs — it
	// is read without synchronization and called outside the tracer lock.
	Hook func(op, label string)

	mu    sync.Mutex
	ctr   *exec.Counters
	root  *Span
	stack []*Span
}

// NewTracer returns a tracer snapshotting ctr around every span.
func NewTracer(ctr *exec.Counters) *Tracer {
	return &Tracer{ctr: ctr}
}

// Begin opens a span as a child of the innermost open span (or as the
// root). It returns the span to pass to End. A nil tracer is a valid
// no-op tracer: Begin returns nil and End(nil, ...) does nothing, so
// instrumented operators need no "is tracing on" branches.
func (t *Tracer) Begin(op, label string) *Span {
	if t == nil {
		return nil
	}
	if hook := t.Hook; hook != nil {
		hook(op, label)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{Op: op, Label: label, before: *t.ctr}
	//lint:allow determinism,taintflow -- span wall time is measured and reported, never fed back into results
	s.start = time.Now()
	if len(t.stack) == 0 {
		if t.root == nil {
			t.root = s
		} else {
			// A second top-level span (e.g. a coordinator merge after the
			// fan-out): keep one root by adopting it under the first.
			t.root.Children = append(t.root.Children, s)
		}
	} else {
		p := t.stack[len(t.stack)-1]
		p.Children = append(p.Children, s)
	}
	t.stack = append(t.stack, s)
	return s
}

// End closes a span with its output cardinality and footprint, capturing
// the wall time and counter delta. Spans must close innermost-first;
// closing an outer span first also closes (as errored) anything still
// open inside it.
func (t *Tracer) End(s *Span, rows, bytes int64) {
	t.finish(s, rows, bytes, false)
}

// EndErr closes a span that failed.
func (t *Tracer) EndErr(s *Span) { t.finish(s, 0, 0, true) }

func (t *Tracer) finish(s *Span, rows, bytes int64, errd bool) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	//lint:allow determinism -- span wall time is measured and reported, never fed back into results
	now := time.Now()
	for len(t.stack) > 0 {
		top := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		top.Wall = now.Sub(top.start)
		top.Counters = exec.DiffCounters(top.before, *t.ctr)
		if top == s {
			top.Rows, top.Bytes, top.Err = rows, bytes, errd
			return
		}
		top.Err = true // implicitly closed by an outer End: it never finished cleanly
	}
}

// Root returns the root span of the trace (nil before the first Begin,
// and nil for a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}
