package plan

// Property suite for the fused pipeline compiler: any supported plan
// shape, over adversarial inputs (duplicate-heavy keys, skewed
// distributions, NaN-bearing floats), must produce byte-identical
// results under vector, fused, and auto execution at every worker
// count.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
)

// adversarialTable builds a table whose key column is duplicate-heavy
// and skewed (quadratic bias toward low keys) and whose float column
// carries NaNs, infinities, and sign-flipping magnitudes — the inputs
// most likely to betray a divergence in join, aggregation, or sort
// behavior between the engines.
func adversarialTable(rng *rand.Rand, name string, n, keyRange int) *colstore.Table {
	b := colstore.NewTableBuilder(name, colstore.Schema{
		{Name: name + "_key", Type: colstore.Int64},
		{Name: name + "_val", Type: colstore.Float64},
		{Name: name + "_tag", Type: colstore.String},
	})
	tags := []string{"red", "green", "blue"}
	for i := 0; i < n; i++ {
		// Quadratic skew: low keys are far more frequent.
		u := rng.Float64()
		b.Int(0, int64(u*u*float64(keyRange)))
		switch rng.Intn(12) {
		case 0:
			b.Float(1, math.NaN())
		case 1:
			b.Float(1, math.Inf(1))
		case 2:
			b.Float(1, math.Inf(-1))
		case 3:
			b.Float(1, math.Copysign(0, -1))
		default:
			b.Float(1, (rng.Float64()-0.5)*1e6)
		}
		b.Str(2, tags[rng.Intn(len(tags))])
		b.EndRow()
	}
	return b.Build()
}

// assertModesIdentical runs the plan under every execution mode and
// worker count and requires byte-identical results against the
// single-worker vector baseline.
func assertModesIdentical(t *testing.T, cat Catalog, n Node, label string) {
	t.Helper()
	base, _, err := RunContext(&Context{Cat: cat, Workers: 1, Exec: ExecVector}, n)
	if err != nil {
		t.Fatalf("%s: vector baseline: %v", label, err)
	}
	for _, mode := range []ExecMode{ExecFused, ExecAuto} {
		for _, w := range []int{1, 2, 4} {
			got, _, err := RunContext(&Context{Cat: cat, Workers: w, Exec: mode}, n)
			if err != nil {
				t.Fatalf("%s: %s workers=%d: %v", label, mode, w, err)
			}
			if ok, why := colstore.TablesIdentical(base, got); !ok {
				t.Fatalf("%s: %s workers=%d diverges from vector: %s", label, mode, w, why)
			}
		}
	}
}

func TestFusedFilterProjectGroupProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		// Large enough to cross the parallel-morsel threshold.
		tbl := adversarialTable(rng, "t", 30000+rng.Intn(50000), 40)
		cat := memCatalog{"t": tbl}
		node := &GroupBy{
			Input: &Project{
				Input: &Filter{
					Input: &Scan{Table: "t"},
					Pred:  exec.CmpI{Column: "t_key", Op: exec.Le, V: int64(rng.Intn(30) + 5)},
				},
				Cols: []NamedExpr{
					{Name: "t_key", Expr: exec.Col{Name: "t_key"}},
					{Name: "t_tag", Expr: exec.Col{Name: "t_tag"}},
					{Name: "scaled", Expr: exec.Arith{Op: exec.MulOp, L: exec.Col{Name: "t_val"}, R: exec.ConstF{V: 1.5}}},
				},
			},
			Keys: []string{"t_key", "t_tag"},
			Aggs: []AggSpec{
				{Name: "s", Func: Sum, Arg: exec.Col{Name: "scaled"}},
				{Name: "n", Func: Count},
				{Name: "mn", Func: Min, Arg: exec.Col{Name: "scaled"}},
				{Name: "mx", Func: Max, Arg: exec.Col{Name: "scaled"}},
			},
		}
		assertModesIdentical(t, cat, node, fmt.Sprintf("trial %d filter→project→group", trial))
	}
}

func TestFusedOrderByNaNProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 6; trial++ {
		tbl := adversarialTable(rng, "t", 2000+rng.Intn(60000), 25)
		cat := memCatalog{"t": tbl}
		node := &OrderBy{
			Input: &Filter{
				Input: &Scan{Table: "t"},
				Pred:  exec.CmpI{Column: "t_key", Op: exec.Ge, V: 2},
			},
			Keys: []exec.SortKey{{Column: "t_val", Desc: trial%2 == 0}, {Column: "t_key"}},
		}
		assertModesIdentical(t, cat, node, fmt.Sprintf("trial %d filter→sort (NaN-bearing)", trial))
	}
}

func TestFusedJoinKindsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 6; trial++ {
		build := adversarialTable(rng, "b", 200+rng.Intn(2000), 30)
		probe := adversarialTable(rng, "p", 30000+rng.Intn(40000), 30)
		cat := memCatalog{"b": build, "p": probe}
		for _, kind := range []JoinKind{Inner, Semi, Anti, LeftCount} {
			join := &HashJoin{
				Build:     &Scan{Table: "b"},
				Probe:     &Filter{Input: &Scan{Table: "p"}, Pred: exec.CmpI{Column: "p_key", Op: exec.Le, V: 25}},
				BuildKeys: []string{"b_key"},
				ProbeKeys: []string{"p_key"},
				Kind:      kind,
				CountAs:   "matches",
			}
			var node Node
			switch kind {
			case Inner:
				node = &GroupBy{
					Input: join,
					Keys:  []string{"b_tag"},
					Aggs: []AggSpec{
						{Name: "s", Func: Sum, Arg: exec.Arith{Op: exec.AddOp, L: exec.Col{Name: "p_val"}, R: exec.Col{Name: "b_val"}}},
						{Name: "n", Func: Count},
					},
				}
			case LeftCount:
				node = &GroupBy{
					Input: join,
					Keys:  []string{"p_tag"},
					Aggs: []AggSpec{
						{Name: "total", Func: Sum, Arg: exec.Col{Name: "matches"}},
						{Name: "n", Func: Count},
					},
				}
			default:
				node = &GroupBy{
					Input: join,
					Keys:  []string{"p_key"},
					Aggs: []AggSpec{
						{Name: "s", Func: Sum, Arg: exec.Col{Name: "p_val"}},
						{Name: "n", Func: Count},
					},
				}
			}
			assertModesIdentical(t, cat, node, fmt.Sprintf("trial %d %v-join→group", trial, kind))
		}
	}
}

func TestFusedChainedJoinsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 4; trial++ {
		dimA := adversarialTable(rng, "a", 100+rng.Intn(1000), 20)
		dimB := adversarialTable(rng, "c", 100+rng.Intn(1000), 20)
		fact := adversarialTable(rng, "f", 30000+rng.Intn(30000), 20)
		cat := memCatalog{"a": dimA, "c": dimB, "f": fact}
		node := &GroupBy{
			Input: &HashJoin{
				Build: &Scan{Table: "c"},
				Probe: &HashJoin{
					Build:     &Scan{Table: "a"},
					Probe:     &Filter{Input: &Scan{Table: "f"}, Pred: exec.CmpI{Column: "f_key", Op: exec.Le, V: 15}},
					BuildKeys: []string{"a_key"},
					ProbeKeys: []string{"f_key"},
					Kind:      Semi,
				},
				BuildKeys: []string{"c_key"},
				ProbeKeys: []string{"f_key"},
				Kind:      Inner,
			},
			Keys: []string{"c_tag"},
			Aggs: []AggSpec{
				{Name: "s", Func: Sum, Arg: exec.Col{Name: "f_val"}},
				{Name: "n", Func: Count},
			},
		}
		assertModesIdentical(t, cat, node, fmt.Sprintf("trial %d semi→inner→group", trial))
	}
}

// TestFusedBloomThresholdParity pins the fused probe to the vector
// path's Bloom pre-filter decision: with a probe side at least 4x the
// build side the pre-filter engages, below that it must not, and in
// both regimes the engines must agree — HashProbeTuples counts the
// probes the join kernels actually perform, so any divergence in the
// decision shows up as a counter mismatch, not just a perf difference.
func TestFusedBloomThresholdParity(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	// Build large enough that exec.JoinTableBytes exceeds the default
	// LLC, forcing the radix join path where the Bloom choice lives.
	build := adversarialTable(rng, "b", 40000, 40000)
	for _, probeRows := range []int{3 * 40000, 5 * 40000} {
		probe := adversarialTable(rng, "p", probeRows, 40000)
		cat := memCatalog{"b": build, "p": probe}
		node := &GroupBy{
			Input: &HashJoin{
				Build:     &Scan{Table: "b"},
				Probe:     &Scan{Table: "p"},
				BuildKeys: []string{"b_key"},
				ProbeKeys: []string{"p_key"},
				Kind:      Semi,
			},
			Keys: []string{"p_tag"},
			Aggs: []AggSpec{{Name: "n", Func: Count}},
		}
		_, vctr, err := RunContext(&Context{Cat: cat, Workers: 2, Exec: ExecVector}, node)
		if err != nil {
			t.Fatal(err)
		}
		_, fctr, err := RunContext(&Context{Cat: cat, Workers: 2, Exec: ExecFused}, node)
		if err != nil {
			t.Fatal(err)
		}
		if vctr.HashProbeTuples != fctr.HashProbeTuples {
			t.Errorf("probe=%dx build: HashProbeTuples diverge (vector %d, fused %d) — Bloom threshold disagreement",
				probeRows/40000, vctr.HashProbeTuples, fctr.HashProbeTuples)
		}
		assertModesIdentical(t, cat, node, fmt.Sprintf("bloom parity probe=%dx", probeRows/40000))
	}
}

// TestCompileLeavesVectorPlansAlone pins the default: without an exec
// mode the compiler must return the identical plan value.
func TestCompileLeavesVectorPlansAlone(t *testing.T) {
	node := &GroupBy{Input: &Scan{Table: "t"}, Aggs: []AggSpec{{Name: "n", Func: Count}}}
	for _, mode := range []ExecMode{"", ExecVector} {
		if got := Compile(&Context{Exec: mode}, node); got != Node(node) {
			t.Errorf("mode %q: Compile should return the input plan unchanged", mode)
		}
	}
}

// TestParseExecMode pins the flag surface.
func TestParseExecMode(t *testing.T) {
	for s, want := range map[string]ExecMode{"": ExecVector, "vector": ExecVector, "fused": ExecFused, "auto": ExecAuto} {
		got, err := ParseExecMode(s)
		if err != nil || got != want {
			t.Errorf("ParseExecMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseExecMode("bogus"); err == nil {
		t.Error("ParseExecMode should reject unknown modes")
	}
}
