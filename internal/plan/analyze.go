package plan

import (
	"fmt"
	"strings"
	"time"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
	"wimpi/internal/obs"
)

// spanNode wraps a node so its execution opens an operator span on the
// context's tracer. Phase-level spans (join build/probe, gathers) are
// opened by the operators themselves and nest inside this one.
type spanNode struct {
	inner Node
	op    string
}

// Execute implements Node.
func (a *spanNode) Execute(ctx *Context) (*colstore.Table, error) {
	sp := ctx.Trace.Begin(a.op, firstLine(strings.TrimSpace(a.inner.Explain(0))))
	out, err := a.inner.Execute(ctx)
	if err != nil {
		ctx.Trace.EndErr(sp)
		return nil, err
	}
	ctx.Trace.End(sp, int64(out.NumRows()), out.SizeBytes())
	return out, nil
}

// Explain implements Node.
func (a *spanNode) Explain(depth int) string { return a.inner.Explain(depth) }

// opName maps a node to its span operator kind.
func opName(n Node) string {
	switch n.(type) {
	case *Scan:
		return "scan"
	case *Filter:
		return "select"
	case *Project:
		return "project"
	case *Rename:
		return "rename"
	case *Limit:
		return "limit"
	case *OrderBy:
		return "sort"
	case *GroupBy:
		return "group-by"
	case *HashJoin:
		return "hash-join"
	case *Fused:
		return "fused-pipeline"
	case *spanNode:
		return "node" // wrappers are never re-instrumented
	default:
		return "node"
	}
}

// instrument returns a deep copy of the plan with every node wrapped in
// a spanNode. It understands all node types defined in this package;
// unknown nodes (e.g. query-defined function nodes) are wrapped without
// descending into their internals.
func instrument(n Node) Node {
	wrap := func(inner Node) Node { return &spanNode{inner: inner, op: opName(n)} }
	switch v := n.(type) {
	case *Scan:
		c := *v
		return wrap(&c)
	case *Filter:
		c := *v
		c.Input = instrument(v.Input)
		return wrap(&c)
	case *Project:
		c := *v
		c.Input = instrument(v.Input)
		return wrap(&c)
	case *Rename:
		c := *v
		c.Input = instrument(v.Input)
		return wrap(&c)
	case *Limit:
		c := *v
		c.Input = instrument(v.Input)
		return wrap(&c)
	case *OrderBy:
		c := *v
		c.Input = instrument(v.Input)
		return wrap(&c)
	case *GroupBy:
		c := *v
		c.Input = instrument(v.Input)
		return wrap(&c)
	case *HashJoin:
		c := *v
		c.Build = instrument(v.Build)
		c.Probe = instrument(v.Probe)
		return wrap(&c)
	case *Fused:
		c := *v
		if c.useFused {
			// Instrument the subplans the fused path actually executes:
			// the generic driver and every probe's build side. Phase
			// spans (join-build, fused-probe, gather) come from the
			// pipeline itself.
			if c.input != nil {
				c.input = instrument(v.input)
			}
			c.stages = make([]fusedStage, len(v.stages))
			copy(c.stages, v.stages)
			for i, st := range c.stages {
				if ps, ok := st.(probeStage); ok {
					ps.build = instrument(ps.build)
					c.stages[i] = ps
				}
			}
		} else {
			c.fallback = instrument(v.fallback)
		}
		return wrap(&c)
	case *spanNode:
		return v // already instrumented
	default:
		return wrap(n)
	}
}

// Traced is the outcome of a traced execution.
type Traced struct {
	// Table is the query result.
	Table *colstore.Table
	// Counters is the total work.
	Counters exec.Counters
	// Root is the operator span tree.
	Root *obs.Span
}

// RunTraced executes a plan with operator span tracing. The result table
// and counters are bit-identical to Run's — tracing only snapshots the
// counters the kernels charge anyway, plus wall clocks that never feed
// back into execution.
func RunTraced(cat Catalog, workers int, n Node) (*Traced, error) {
	return RunTracedContext(&Context{Cat: cat, Workers: workers}, n)
}

// RunTracedContext is RunTraced under a caller-configured context. A nil
// Ctr gets fresh counters; any Trace already set is replaced by the
// tracer whose span tree the result reports, though a pre-set tracer's
// Hook is inherited — that is how deterministic tests act at an exact
// pipeline stage (e.g. cancel the query the moment its sort begins).
func RunTracedContext(ctx *Context, n Node) (*Traced, error) {
	if ctx.Ctr == nil {
		ctx.Ctr = &exec.Counters{}
	}
	tr := obs.NewTracer(ctx.Ctr)
	if ctx.Trace != nil {
		tr.Hook = ctx.Trace.Hook
	}
	ctx.Trace = tr
	sched, release := ctx.attachSched()
	compiled := instrument(Compile(ctx, n))
	if ctx.SpillDir != "" && ctx.MemLimitBytes > 0 {
		ctx.spillOK = hasSpillableJoin(compiled)
	}
	out, err := compiled.Execute(ctx)
	ctx.spillOK = false
	if a := ctx.spillArea; a != nil {
		ctx.spillArea = nil
		if cerr := a.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err == nil {
		err = sched.Err()
	}
	release()
	if err != nil {
		return nil, err
	}
	return &Traced{Table: out, Counters: *ctx.Ctr, Root: tr.Root()}, nil
}

// NodeStats records one operator's contribution during an analyzed
// execution.
type NodeStats struct {
	// Label is the operator's one-line description.
	Label string
	// Depth is the operator's depth in the span tree.
	Depth int
	// Rows is the operator's output cardinality.
	Rows int
	// OutputBytes is the operator's output footprint.
	OutputBytes int64
	// HostDuration is wall-clock time spent in this operator,
	// excluding its children.
	HostDuration time.Duration
	// Counters is the work charged by this operator, excluding its
	// children.
	Counters exec.Counters
}

// Analysis is the outcome of an analyzed execution.
type Analysis struct {
	// Table is the query result.
	Table *colstore.Table
	// Counters is the total work.
	Counters exec.Counters
	// Stats holds per-operator measurements in pre-order.
	Stats []NodeStats
	// Root is the underlying span tree (also flattened into Stats).
	Root *obs.Span
}

// Analyze executes a plan with per-operator instrumentation — the
// engine's EXPLAIN ANALYZE. It is RunTraced plus a flattening of the
// span tree into pre-order per-operator rows with exclusive (children
// subtracted) measurements.
func Analyze(cat Catalog, workers int, n Node) (*Analysis, error) {
	return AnalyzeContext(&Context{Cat: cat, Workers: workers}, n)
}

// AnalyzeContext is Analyze under a caller-configured context.
func AnalyzeContext(ctx *Context, n Node) (*Analysis, error) {
	res, err := RunTracedContext(ctx, n)
	if err != nil {
		return nil, err
	}
	var stats []NodeStats
	res.Root.Walk(func(sp *obs.Span, depth int) {
		stats = append(stats, NodeStats{
			Label:        sp.Label,
			Depth:        depth,
			Rows:         int(sp.Rows),
			OutputBytes:  sp.Bytes,
			HostDuration: sp.SelfWall(),
			Counters:     sp.SelfCounters(),
		})
	})
	return &Analysis{Table: res.Table, Counters: res.Counters, Stats: stats, Root: res.Root}, nil
}

// Render formats the analysis as an annotated plan tree.
func (a *Analysis) Render() string {
	var b strings.Builder
	b.WriteString("operator                                          rows     out-bytes       time     seq-bytes      rnd-acc\n")
	for _, st := range a.Stats {
		label := strings.Repeat("  ", st.Depth) + firstLine(st.Label)
		if len(label) > 48 {
			label = label[:45] + "..."
		}
		fmt.Fprintf(&b, "%-48s %8d %13d %10s %13d %12d\n",
			label, st.Rows, st.OutputBytes,
			st.HostDuration.Round(time.Microsecond),
			st.Counters.SeqBytes, st.Counters.RandomAccesses)
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
