package plan

import (
	"fmt"
	"strings"
	"time"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
)

// NodeStats records one operator's contribution during an analyzed
// execution.
type NodeStats struct {
	// Label is the operator's one-line description.
	Label string
	// Depth is the operator's depth in the plan tree.
	Depth int
	// Rows is the operator's output cardinality.
	Rows int
	// OutputBytes is the operator's output footprint.
	OutputBytes int64
	// HostDuration is wall-clock time spent in this operator,
	// excluding its children.
	HostDuration time.Duration
	// Counters is the work charged by this operator, excluding its
	// children.
	Counters exec.Counters
}

// analyzeNode wraps a node, timing it and diffing the context counters
// around its execution.
type analyzeNode struct {
	inner Node
	stats *[]NodeStats
	depth int
}

// Execute implements Node.
func (a *analyzeNode) Execute(ctx *Context) (*colstore.Table, error) {
	// Record an entry eagerly so parents appear before children and the
	// child-inclusive measurements can be corrected afterwards.
	idx := len(*a.stats)
	*a.stats = append(*a.stats, NodeStats{
		Label: strings.TrimSpace(a.inner.Explain(0)),
		Depth: a.depth,
	})
	before := *ctx.Ctr
	//lint:allow determinism -- EXPLAIN ANALYZE measures host wall time; results never depend on it
	start := time.Now()
	out, err := a.inner.Execute(ctx)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	st := &(*a.stats)[idx]
	st.Rows = out.NumRows()
	st.OutputBytes = out.SizeBytes()
	// Inclusive measurements; Analyze converts them to exclusive in a
	// post-pass once all children are recorded.
	st.HostDuration = elapsed
	st.Counters = diffCounters(before, *ctx.Ctr)
	return out, nil
}

// exclusiveStats converts inclusive pre-order measurements to exclusive
// ones by subtracting each node's direct children (which, in pre-order,
// are the following entries one level deeper, up to the next entry at
// the node's own depth or shallower).
func exclusiveStats(stats []NodeStats) {
	// Process parents before their children (ascending pre-order), so a
	// parent always subtracts its children's still-inclusive values.
	for i := 0; i < len(stats); i++ {
		for j := i + 1; j < len(stats); j++ {
			if stats[j].Depth <= stats[i].Depth {
				break
			}
			if stats[j].Depth == stats[i].Depth+1 {
				stats[i].HostDuration -= stats[j].HostDuration
				stats[i].Counters = diffCounters(stats[j].Counters, stats[i].Counters)
			}
		}
	}
}

// Explain implements Node.
func (a *analyzeNode) Explain(depth int) string { return a.inner.Explain(depth) }

func diffCounters(before, after exec.Counters) exec.Counters {
	return exec.Counters{
		TuplesScanned:      after.TuplesScanned - before.TuplesScanned,
		SeqBytes:           after.SeqBytes - before.SeqBytes,
		RandomAccesses:     after.RandomAccesses - before.RandomAccesses,
		IntOps:             after.IntOps - before.IntOps,
		FloatOps:           after.FloatOps - before.FloatOps,
		HashBuildTuples:    after.HashBuildTuples - before.HashBuildTuples,
		HashProbeTuples:    after.HashProbeTuples - before.HashProbeTuples,
		AggUpdates:         after.AggUpdates - before.AggUpdates,
		TuplesMaterialized: after.TuplesMaterialized - before.TuplesMaterialized,
		BytesMaterialized:  after.BytesMaterialized - before.BytesMaterialized,
		TouchedBaseBytes:   after.TouchedBaseBytes - before.TouchedBaseBytes,
		MergeBytes:         after.MergeBytes - before.MergeBytes,
		MaxHashBytes:       after.MaxHashBytes,
		PeakLiveBytes:      after.PeakLiveBytes,
	}
}

// instrument returns a deep copy of the plan with every node wrapped for
// analysis. It understands all node types defined in this package;
// unknown nodes (e.g. query-defined function nodes) are wrapped without
// descending into their internals.
func instrument(n Node, stats *[]NodeStats, depth int) Node {
	wrap := func(inner Node) Node { return &analyzeNode{inner: inner, stats: stats, depth: depth} }
	switch v := n.(type) {
	case *Scan:
		c := *v
		return wrap(&c)
	case *Filter:
		c := *v
		c.Input = instrument(v.Input, stats, depth+1)
		return wrap(&c)
	case *Project:
		c := *v
		c.Input = instrument(v.Input, stats, depth+1)
		return wrap(&c)
	case *Rename:
		c := *v
		c.Input = instrument(v.Input, stats, depth+1)
		return wrap(&c)
	case *Limit:
		c := *v
		c.Input = instrument(v.Input, stats, depth+1)
		return wrap(&c)
	case *OrderBy:
		c := *v
		c.Input = instrument(v.Input, stats, depth+1)
		return wrap(&c)
	case *GroupBy:
		c := *v
		c.Input = instrument(v.Input, stats, depth+1)
		return wrap(&c)
	case *HashJoin:
		c := *v
		c.Build = instrument(v.Build, stats, depth+1)
		c.Probe = instrument(v.Probe, stats, depth+1)
		return wrap(&c)
	default:
		return wrap(n)
	}
}

// Analysis is the outcome of an analyzed execution.
type Analysis struct {
	// Table is the query result.
	Table *colstore.Table
	// Counters is the total work.
	Counters exec.Counters
	// Stats holds per-operator measurements in pre-order.
	Stats []NodeStats
}

// Analyze executes a plan with per-operator instrumentation — the
// engine's EXPLAIN ANALYZE.
func Analyze(cat Catalog, workers int, n Node) (*Analysis, error) {
	var stats []NodeStats
	wrapped := instrument(n, &stats, 0)
	out, ctr, err := Run(cat, workers, wrapped)
	if err != nil {
		return nil, err
	}
	exclusiveStats(stats)
	return &Analysis{Table: out, Counters: ctr, Stats: stats}, nil
}

// Render formats the analysis as an annotated plan tree.
func (a *Analysis) Render() string {
	var b strings.Builder
	b.WriteString("operator                                          rows     out-bytes       time     seq-bytes      rnd-acc\n")
	for _, st := range a.Stats {
		label := strings.Repeat("  ", st.Depth) + firstLine(st.Label)
		if len(label) > 48 {
			label = label[:45] + "..."
		}
		fmt.Fprintf(&b, "%-48s %8d %13d %10s %13d %12d\n",
			label, st.Rows, st.OutputBytes,
			st.HostDuration.Round(time.Microsecond),
			st.Counters.SeqBytes, st.Counters.RandomAccesses)
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
