package plan

import (
	"fmt"
	"strings"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
	"wimpi/internal/hardware"
)

// JoinKind selects the semantics of a HashJoin.
type JoinKind uint8

// The join kinds.
const (
	// Inner emits one output row per matching (build, probe) pair,
	// carrying the columns of both sides.
	Inner JoinKind = iota
	// Semi emits probe rows with at least one match (probe columns only).
	Semi
	// Anti emits probe rows with no match (probe columns only).
	Anti
	// LeftCount emits every probe row plus an int64 column counting its
	// matches, implementing COUNT-augmented left outer joins (Q13).
	LeftCount
)

// String returns the kind's name.
func (k JoinKind) String() string {
	switch k {
	case Inner:
		return "inner"
	case Semi:
		return "semi"
	case Anti:
		return "anti"
	default:
		return "left-count"
	}
}

// HashJoin joins Build and Probe on equality of one or two key columns.
// The smaller input should be the build side; the node does not reorder
// its children.
type HashJoin struct {
	// Build and Probe are the child operators.
	Build, Probe Node
	// BuildKeys and ProbeKeys name the equi-join columns (one or two,
	// pairwise matched).
	BuildKeys, ProbeKeys []string
	// Kind selects inner/semi/anti/left-count semantics.
	Kind JoinKind
	// CountAs names the match-count column for LeftCount joins; it
	// defaults to "match_count".
	CountAs string
}

// Execute implements Node.
func (j *HashJoin) Execute(ctx *Context) (*colstore.Table, error) {
	if len(j.BuildKeys) == 0 || len(j.BuildKeys) != len(j.ProbeKeys) {
		return nil, fmt.Errorf("plan: hash join needs matching key lists, got %v and %v", j.BuildKeys, j.ProbeKeys)
	}
	build, err := j.Build.Execute(ctx)
	if err != nil {
		return nil, err
	}
	probe, err := j.Probe.Execute(ctx)
	if err != nil {
		return nil, err
	}
	w := ctx.workers()
	mr := ctx.morselRows()

	// Build phase: key extraction plus hash table construction. When the
	// chained table would blow the LLC budget, switch to the radix-
	// partitioned build: the partition pass gets its own span because it
	// is the streaming price paid to keep every probe cache-resident.
	bsp := ctx.Trace.Begin("join-build", fmt.Sprintf("build [%s]", strings.Join(j.BuildKeys, ",")))
	bk, err := joinKeysParallel(ctx, build, j.BuildKeys)
	if err != nil {
		ctx.Trace.EndErr(bsp)
		return nil, err
	}
	var jt exec.JoinIndex
	var rt probeKernel
	if sj, serr := ctx.buildSpillJoiner(bk, probe.NumRows()); serr != nil {
		ctx.Trace.EndErr(bsp)
		return nil, serr
	} else if sj != nil {
		// The join state would not fit the memory budget: partition both
		// sides and stream the beyond-budget partitions through the spill
		// area instead of letting the OS page the hash table through swap.
		rt = sj
	} else if radix, why := chooseRadix(len(bk), probe.NumRows(), ctx.llcBytes()); radix {
		target := ctx.llcBytes()
		bits := exec.RadixBits(len(bk), exec.RadixBuildBytesPerRow, target/2)
		ksp := ctx.Trace.Begin("join-partition",
			fmt.Sprintf("radix %d-way, %d pass(es); %s", 1<<bits, exec.RadixPasses(bits), why))
		rp, err := exec.RadixPartitionKeys(bk, nil, bits, w, mr, ctx.Ctr)
		if err != nil {
			ctx.Trace.EndErr(ksp)
			ctx.Trace.EndErr(bsp)
			return nil, err
		}
		ctx.Trace.End(ksp, int64(len(bk)), int64(len(bk))*12)
		cfg := exec.RadixJoinConfig{Bloom: useBloom(len(bk), probe.NumRows(), target)}
		rt, err = exec.BuildRadixTables(rp, cfg, w, mr, ctx.Ctr)
		if err != nil {
			ctx.Trace.EndErr(bsp)
			return nil, err
		}
	} else {
		jt, err = exec.BuildJoinTableParallel(bk, w, mr, ctx.Ctr)
		if err != nil {
			ctx.Trace.EndErr(bsp)
			return nil, err
		}
	}
	ctx.Trace.End(bsp, int64(build.NumRows()), build.SizeBytes())

	// Probe phase: key extraction, probe kernel, and output gathers.
	psp := ctx.Trace.Begin("join-probe", fmt.Sprintf("probe [%s]", strings.Join(j.ProbeKeys, ",")))
	out, err := j.probePhase(ctx, jt, rt, build, probe, w, mr)
	if err != nil {
		ctx.Trace.EndErr(psp)
		return nil, err
	}
	ctx.Trace.End(psp, int64(out.NumRows()), out.SizeBytes())
	return out, nil
}

// radixMinBuildRows is the smallest build side worth partitioning; below
// it the chained table fits comfortably in cache anyway and the pass
// setup would dominate.
const radixMinBuildRows = 1 << 12

// chooseRadix decides the build strategy by pricing both candidates with
// the hardware cost model on the wimpy reference profile — the same
// model (and the same "plan for the smallest node" stance) as the auto
// engine decision. The differential profiles carry only what differs:
// the chained table's DRAM-latency probes against the radix path's
// partition streaming plus cache-resident probes. The decision depends
// only on input cardinalities and the LLC budget — never on the worker
// count — so the choice (and the byte-exact output) is identical on one
// core, eight cores, and a re-dispatched cluster worker.
//
// On a big-cached host the radix path often loses in wall-clock (the
// chained table fits some L3 slice and partitioning is pure overhead);
// it wins on the simulated Pi, whose 512 KiB LLC is the budget the
// partitions are sized to. BENCH_join.json reports both columns.
func chooseRadix(buildRows, probeRows int, llcBytes int64) (bool, string) {
	if llcBytes <= 0 {
		return false, "chained: partitioned paths disabled"
	}
	if buildRows < radixMinBuildRows {
		return false, fmt.Sprintf("chained: build %d rows below radix threshold %d", buildRows, radixMinBuildRows)
	}
	tableBytes := exec.JoinTableBytes(buildRows)
	if tableBytes <= llcBytes {
		return false, fmt.Sprintf("chained: table %dB fits LLC budget %dB", tableBytes, llcBytes)
	}

	// Chained: every probe is a DRAM-latency random access into the
	// oversized table.
	var chained exec.Counters
	chained.RandomAccesses = int64(probeRows)
	chained.MaxHashBytes = tableBytes

	// Radix: both sides stream through the partition passes (histogram
	// read + scatter read/write per pass, as the partitioner charges),
	// then build and probe run cache-resident.
	bits := exec.RadixBits(buildRows, exec.RadixBuildBytesPerRow, llcBytes/2)
	passes := int64(exec.RadixPasses(bits))
	var radix exec.Counters
	radix.PartitionBytes = 3 * 12 * passes * int64(buildRows+probeRows)
	radix.CacheRandomAccesses = int64(2*buildRows + probeRows)
	radix.MaxPartitionBytes = exec.RadixBuildBytesPerRow * int64(buildRows) >> bits

	model := hardware.DefaultModel()
	pi := hardware.Pi()
	tc := model.OperatorTime(&pi, chained, 1)
	tr := model.OperatorTime(&pi, radix, 1)
	if tr <= tc {
		return true, fmt.Sprintf("radix: saves %v on %s (est %v vs %v)", tc-tr, pi.Name, tr, tc)
	}
	return false, fmt.Sprintf("chained: radix overhead loses %v on %s (est %v vs %v)", tr-tc, pi.Name, tr, tc)
}

// useBloom enables the probe-side Bloom pre-filter when the probe side
// dwarfs the build side (so most probes miss and the filter prunes them
// before partitioning) and the filter itself respects the cache budget.
func useBloom(buildRows, probeRows int, llcBytes int64) bool {
	return probeRows >= 4*buildRows && exec.BloomBytes(buildRows) <= llcBytes
}

// probePhase extracts probe keys and dispatches the probe kernel.
// Exactly one of jt (chained/direct) and rt (radix-partitioned or
// budget-bounded spill) is non-nil; all kernels produce byte-identical
// match sets, so everything downstream is shared.
func (j *HashJoin) probePhase(ctx *Context, jt exec.JoinIndex, rt probeKernel, build, probe *colstore.Table, w, mr int) (*colstore.Table, error) {
	pk, err := joinKeysParallel(ctx, probe, j.ProbeKeys)
	if err != nil {
		return nil, err
	}
	switch j.Kind {
	case Inner:
		var bi, pi []int32
		if rt != nil {
			bi, pi, err = rt.InnerJoin(pk, w, mr, ctx.Ctr)
		} else {
			bi, pi, err = exec.InnerJoinParallel(jt, pk, w, mr, ctx.Ctr)
		}
		if err != nil {
			return nil, err
		}
		left, err := gather(ctx, probe, pi)
		if err != nil {
			return nil, err
		}
		right, err := gather(ctx, build, bi)
		if err != nil {
			return nil, err
		}
		out, err := concatTables(left, right)
		if err != nil {
			return nil, fmt.Errorf("plan: join %v/%v: %w", j.BuildKeys, j.ProbeKeys, err)
		}
		observe(ctx, build, probe, out)
		return out, nil
	case Semi:
		var sel []int32
		if rt != nil {
			sel, err = rt.SemiJoin(pk, w, mr, ctx.Ctr)
		} else {
			sel, err = exec.SemiJoinParallel(jt, pk, w, mr, ctx.Ctr)
		}
		if err != nil {
			return nil, err
		}
		out, err := gather(ctx, probe, sel)
		if err != nil {
			return nil, err
		}
		observe(ctx, build, probe, out)
		return out, nil
	case Anti:
		var sel []int32
		if rt != nil {
			sel, err = rt.AntiJoin(pk, w, mr, ctx.Ctr)
		} else {
			sel, err = exec.AntiJoinParallel(jt, pk, w, mr, ctx.Ctr)
		}
		if err != nil {
			return nil, err
		}
		out, err := gather(ctx, probe, sel)
		if err != nil {
			return nil, err
		}
		observe(ctx, build, probe, out)
		return out, nil
	case LeftCount:
		var counts []int64
		if rt != nil {
			counts, err = rt.CountPerProbe(pk, w, mr, ctx.Ctr)
		} else {
			counts, err = exec.CountPerProbeParallel(jt, pk, w, mr, ctx.Ctr)
		}
		if err != nil {
			return nil, err
		}
		name := j.CountAs
		if name == "" {
			name = "match_count"
		}
		schema := make(colstore.Schema, 0, probe.NumCols()+1)
		cols := make([]colstore.Column, 0, probe.NumCols()+1)
		schema = append(schema, probe.Schema...)
		cols = append(cols, probe.Cols...)
		schema = append(schema, colstore.Field{Name: name, Type: colstore.Int64})
		cols = append(cols, &colstore.Int64s{V: counts})
		out, err := colstore.NewTable("", schema, cols)
		if err != nil {
			return nil, err
		}
		observe(ctx, build, probe, out)
		return out, nil
	default:
		return nil, fmt.Errorf("plan: unknown join kind %d", j.Kind)
	}
}

// Explain implements Node.
func (j *HashJoin) Explain(depth int) string {
	return fmt.Sprintf("%shash join (%s) build.%s = probe.%s\n%s%s",
		pad(depth), j.Kind,
		strings.Join(j.BuildKeys, ","), strings.Join(j.ProbeKeys, ","),
		j.Build.Explain(depth+1), j.Probe.Explain(depth+1))
}

// joinKeys extracts 64-bit keys for one side of a join, packing two-column
// keys into a single word.
func joinKeys(t *colstore.Table, names []string, ctr *exec.Counters) ([]int64, error) {
	switch len(names) {
	case 1:
		c, err := t.ColByName(names[0])
		if err != nil {
			return nil, err
		}
		return exec.KeysFromColumn(c, nil, ctr)
	case 2:
		a, err := t.ColByName(names[0])
		if err != nil {
			return nil, err
		}
		b, err := t.ColByName(names[1])
		if err != nil {
			return nil, err
		}
		hi, err := exec.KeysFromColumn(a, nil, ctr)
		if err != nil {
			return nil, err
		}
		lo, err := exec.KeysFromColumn(b, nil, ctr)
		if err != nil {
			return nil, err
		}
		return exec.CombineKeys(hi, lo, 31, ctr)
	default:
		return nil, fmt.Errorf("plan: joins support one or two key columns, got %d", len(names))
	}
}

// joinKeysParallel is joinKeys with the per-row key extraction and
// packing split into morsels. Both kernels are elementwise, so the
// output is identical to the sequential path.
func joinKeysParallel(ctx *Context, t *colstore.Table, names []string) ([]int64, error) {
	w := ctx.workers()
	n := t.NumRows()
	if w == 1 || n < ctx.parallelMinRows() {
		return joinKeys(t, names, ctx.Ctr)
	}
	out := make([]int64, n)
	err := exec.RunMorsels(w, n, ctx.morselRows(), ctx.Ctr, func(m, lo, hi int, ctr *exec.Counters) error {
		v, err := joinKeys(t.Slice(lo, hi), names, ctr)
		if err != nil {
			return err
		}
		copy(out[lo:hi], v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// concatTables concatenates the columns of two equal-length tables,
// rejecting duplicate column names (rename one side first).
func concatTables(a, b *colstore.Table) (*colstore.Table, error) {
	if a.NumRows() != b.NumRows() {
		return nil, fmt.Errorf("row count mismatch: %d vs %d", a.NumRows(), b.NumRows())
	}
	schema := make(colstore.Schema, 0, a.NumCols()+b.NumCols())
	cols := make([]colstore.Column, 0, a.NumCols()+b.NumCols())
	schema = append(schema, a.Schema...)
	cols = append(cols, a.Cols...)
	for i, f := range b.Schema {
		if a.Schema.Index(f.Name) >= 0 {
			return nil, fmt.Errorf("duplicate column %q after join; rename one side", f.Name)
		}
		schema = append(schema, f)
		cols = append(cols, b.Cols[i])
	}
	return colstore.NewTable("", schema, cols)
}
