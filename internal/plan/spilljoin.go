package plan

import (
	"fmt"

	"wimpi/internal/exec"
	"wimpi/internal/spill"
)

// Budget-bounded spill join. When a hash join's build+probe state would
// not fit the query's memory budget, the join reuses the radix
// partitioner (PR 5) with the partition as the spill unit: both sides
// are partitioned with the same fan-out, a resident prefix of partitions
// stays in memory, and every partition beyond it streams through the
// on-disk spill area and is processed one partition at a time. The
// degradation is planned and priced — charged sequential spill I/O
// instead of the cliff-edge swap model — and the output is byte-
// identical to the in-memory join: partition tables group keys in
// scatter order exactly like the radix join, and inner-join output
// positions come from the same global count + prefix-sum scheme.
//
// The spill decision depends only on input cardinalities and the budget
// — never on Workers — so results stay bit-identical at every degree of
// parallelism and across cluster re-dispatch (the budget ships with
// LoadRequest so re-planned partitions decide identically).

const (
	// spillBuildBytesPerRow is a build row's resident footprint:
	// partitioned key+row (12) plus its share of the partition table.
	spillBuildBytesPerRow = 12 + exec.RadixBuildBytesPerRow
	// spillProbeBytesPerRow is a probe row's resident footprint:
	// partitioned key+row.
	spillProbeBytesPerRow = 12
)

// joinStateBytes estimates the resident footprint of a fully in-memory
// hash join of the given cardinalities.
func joinStateBytes(buildRows, probeRows int) int64 {
	return int64(buildRows)*spillBuildBytesPerRow + int64(probeRows)*spillProbeBytesPerRow
}

// useSpillJoin reports whether a join of the given cardinalities must
// take the spill path: spilling is enabled, a budget is set, and the
// join state would claim more than half the budget (the other half is
// the query's base columns and intermediates).
func (c *Context) useSpillJoin(buildRows, probeRows int) bool {
	return c.SpillDir != "" && c.spillOK && c.MemLimitBytes > 0 &&
		joinStateBytes(buildRows, probeRows) > c.MemLimitBytes/2
}

// spillBits picks the fan-out that brings one partition's share of the
// join state under a quarter of the budget, so a partition's build
// table, probe entries, and working state fit comfortably inside the
// resident half.
func spillBits(buildRows, probeRows int, budget int64) uint {
	state := joinStateBytes(buildRows, probeRows)
	target := budget / 4
	if target <= 0 {
		return exec.MaxRadixBits
	}
	var bits uint
	for state>>bits > target && bits < exec.MaxRadixBits {
		bits++
	}
	return bits
}

// probeKernel is the build-side index a probe phase drives — the radix
// join table or the spill joiner. Both produce output byte-identical to
// the chained JoinTable, so everything downstream is shared.
type probeKernel interface {
	InnerJoin(probeKeys []int64, workers, morselRows int, ctr *exec.Counters) (buildIdx, probeIdx []int32, err error)
	SemiJoin(probeKeys []int64, workers, morselRows int, ctr *exec.Counters) ([]int32, error)
	AntiJoin(probeKeys []int64, workers, morselRows int, ctr *exec.Counters) ([]int32, error)
	CountPerProbe(probeKeys []int64, workers, morselRows int, ctr *exec.Counters) ([]int64, error)
}

// spillJoiner is the budget-bounded probeKernel: the partitioned build
// side with its beyond-budget partitions spilled to disk.
type spillJoiner struct {
	ctx      *Context
	bits     uint
	resident int // partitions < resident stay in memory
	rp       *exec.RadixPartitions
	bsegs    []*spill.Segment // per partition; nil below resident
}

// buildSpillJoiner partitions the build keys and spills the partitions
// beyond the resident budget, returning nil when the join fits in
// memory and the normal paths should run. Called under the join-build
// span by both the vector and the fused engine.
func (c *Context) buildSpillJoiner(bk []int64, probeRows int) (*spillJoiner, error) {
	if !c.useSpillJoin(len(bk), probeRows) {
		return nil, nil
	}
	area, err := c.area()
	if err != nil {
		return nil, err
	}
	bits := spillBits(len(bk), probeRows, c.MemLimitBytes)
	w, mr := c.workers(), c.morselRows()
	sp := c.Trace.Begin("spill-partition",
		fmt.Sprintf("radix %d-way, budget %s", 1<<bits, spill.FormatByteSize(c.MemLimitBytes)))
	rp, err := exec.RadixPartitionKeys(bk, nil, bits, w, mr, c.Ctr)
	if err != nil {
		c.Trace.EndErr(sp)
		return nil, err
	}
	np := rp.NumPartitions()
	sj := &spillJoiner{ctx: c, bits: bits, rp: rp, bsegs: make([]*spill.Segment, np)}

	// Resident prefix: partitions fit in memory until their cumulative
	// build state plus a uniform probe estimate crosses half the budget.
	// The boundary depends only on the build's partition sizes and the
	// budget, so every engine and every re-dispatch picks the same one.
	estProbePart := int64(probeRows) * spillProbeBytesPerRow >> bits
	budget := c.MemLimitBytes / 2
	var used int64
	for p := 0; p < np; p++ {
		b := int64(rp.Off[p+1]-rp.Off[p])*spillBuildBytesPerRow + estProbePart
		if used+b > budget {
			break
		}
		used += b
		sj.resident++
	}

	var spilled int64
	sctx := c.Sched.Context()
	for p := sj.resident; p < np; p++ {
		lo, hi := rp.Off[p], rp.Off[p+1]
		seg, err := area.WriteSegment(sctx, rp.Keys[lo:hi], rp.Rows[lo:hi], c.Ctr)
		if err != nil {
			c.Trace.EndErr(sp)
			return nil, err
		}
		sj.bsegs[p] = seg
		spilled += seg.SizeBytes()
	}
	c.Ctr.ObserveResidentCap(c.MemLimitBytes)
	c.Trace.End(sp, int64(len(bk)), spilled)
	return sj, nil
}

// partitionProbe partitions the probe keys with the build fan-out and
// spills the partitions beyond the resident prefix.
func (sj *spillJoiner) partitionProbe(pk []int64, w, mr int, ctr *exec.Counters) (*exec.RadixPartitions, []*spill.Segment, error) {
	pp, err := exec.RadixPartitionKeys(pk, nil, sj.bits, w, mr, ctr)
	if err != nil {
		return nil, nil, err
	}
	area, err := sj.ctx.area()
	if err != nil {
		return nil, nil, err
	}
	sctx := sj.ctx.Sched.Context()
	psegs := make([]*spill.Segment, pp.NumPartitions())
	for p := sj.resident; p < pp.NumPartitions(); p++ {
		lo, hi := pp.Off[p], pp.Off[p+1]
		seg, err := area.WriteSegment(sctx, pp.Keys[lo:hi], pp.Rows[lo:hi], ctr)
		if err != nil {
			return nil, nil, err
		}
		psegs[p] = seg
	}
	return pp, psegs, nil
}

// forEachPart runs one pass over all partitions: the resident ones from
// memory, the spilled ones read back from the spill area, each with its
// partition table freshly built so only one partition's state is live at
// a time. A pass re-reads spilled segments, so a two-pass kernel pays
// the spill read twice — that is the honest price of not fitting.
func (sj *spillJoiner) forEachPart(pp *exec.RadixPartitions, psegs []*spill.Segment, ctr *exec.Counters,
	fn func(p int, pt *exec.PartTable, pkeys []int64, prows []int32)) error {
	sctx := sj.ctx.Sched.Context()
	for p := 0; p < sj.rp.NumPartitions(); p++ {
		if err := sj.ctx.Sched.Err(); err != nil {
			return err
		}
		var bkeys []int64
		var brows []int32
		if sj.bsegs[p] == nil {
			lo, hi := sj.rp.Off[p], sj.rp.Off[p+1]
			bkeys, brows = sj.rp.Keys[lo:hi], sj.rp.Rows[lo:hi]
		} else {
			var err error
			bkeys, brows, err = sj.bsegs[p].Read(sctx, ctr)
			if err != nil {
				return err
			}
		}
		var pkeys []int64
		var prows []int32
		if psegs[p] == nil {
			lo, hi := pp.Off[p], pp.Off[p+1]
			pkeys, prows = pp.Keys[lo:hi], pp.Rows[lo:hi]
		} else {
			var err error
			pkeys, prows, err = psegs[p].Read(sctx, ctr)
			if err != nil {
				return err
			}
		}
		pt := exec.BuildPartTable(bkeys, brows, ctr)
		fn(p, pt, pkeys, prows)
	}
	return nil
}

// InnerJoin implements probeKernel, byte-identical to the in-memory
// joins: probe rows ascending, duplicates in descending build-row
// order. Pass one counts matches per probe row, a prefix sum assigns
// output windows, pass two re-reads every partition and fills them.
func (sj *spillJoiner) InnerJoin(pk []int64, w, mr int, ctr *exec.Counters) ([]int32, []int32, error) {
	sp := sj.ctx.Trace.Begin("spill-probe", fmt.Sprintf("inner, %d partitions (%d resident)", sj.rp.NumPartitions(), sj.resident))
	pp, psegs, err := sj.partitionProbe(pk, w, mr, ctr)
	if err != nil {
		sj.ctx.Trace.EndErr(sp)
		return nil, nil, err
	}
	counts := make([]int32, len(pk))
	err = sj.forEachPart(pp, psegs, ctr, func(_ int, pt *exec.PartTable, pkeys []int64, prows []int32) {
		for i, k := range pkeys {
			if _, cnt := pt.Lookup(k); cnt > 0 {
				counts[prows[i]] = cnt
			}
		}
		ctr.HashProbeTuples += int64(len(pkeys))
		ctr.CacheRandomAccesses += int64(len(pkeys))
	})
	if err != nil {
		sj.ctx.Trace.EndErr(sp)
		return nil, nil, err
	}

	offs := make([]int32, len(pk))
	var total int32
	for i, n := range counts {
		offs[i] = total
		total += n
	}
	ctr.IntOps += int64(len(pk))
	ctr.SeqBytes += int64(len(pk)) * 8

	buildIdx := make([]int32, total)
	probeIdx := make([]int32, total)
	err = sj.forEachPart(pp, psegs, ctr, func(_ int, pt *exec.PartTable, pkeys []int64, prows []int32) {
		var emitted int64
		for i, k := range pkeys {
			s, cnt := pt.Lookup(k)
			if cnt == 0 {
				continue
			}
			pr := prows[i]
			o := int(offs[pr])
			for d := int32(0); d < cnt; d++ {
				buildIdx[o+int(d)] = pt.Payload(s + cnt - 1 - d)
				probeIdx[o+int(d)] = pr
			}
			emitted += int64(cnt)
		}
		ctr.CacheRandomAccesses += int64(len(pkeys)) + emitted
		ctr.SeqBytes += emitted * 8
	})
	if err != nil {
		sj.ctx.Trace.EndErr(sp)
		return nil, nil, err
	}
	sj.ctx.Trace.End(sp, int64(total), int64(total)*8)
	return buildIdx, probeIdx, nil
}

// matchFlags probes every partition once and marks matching probe rows.
func (sj *spillJoiner) matchFlags(pk []int64, w, mr int, ctr *exec.Counters) ([]bool, error) {
	pp, psegs, err := sj.partitionProbe(pk, w, mr, ctr)
	if err != nil {
		return nil, err
	}
	hit := make([]bool, len(pk))
	err = sj.forEachPart(pp, psegs, ctr, func(_ int, pt *exec.PartTable, pkeys []int64, prows []int32) {
		for i, k := range pkeys {
			if _, cnt := pt.Lookup(k); cnt > 0 {
				hit[prows[i]] = true
			}
		}
		ctr.HashProbeTuples += int64(len(pkeys))
		ctr.CacheRandomAccesses += int64(len(pkeys))
	})
	if err != nil {
		return nil, err
	}
	return hit, nil
}

// collectSpillFlags gathers rows whose flag equals want, ascending.
func collectSpillFlags(flags []bool, want bool, ctr *exec.Counters) []int32 {
	out := make([]int32, 0, len(flags))
	for i, f := range flags {
		if f == want {
			out = append(out, int32(i))
		}
	}
	ctr.SeqBytes += int64(len(flags))
	ctr.IntOps += int64(len(flags))
	return out
}

// SemiJoin implements probeKernel.
func (sj *spillJoiner) SemiJoin(pk []int64, w, mr int, ctr *exec.Counters) ([]int32, error) {
	sp := sj.ctx.Trace.Begin("spill-probe", fmt.Sprintf("semi, %d partitions (%d resident)", sj.rp.NumPartitions(), sj.resident))
	hit, err := sj.matchFlags(pk, w, mr, ctr)
	if err != nil {
		sj.ctx.Trace.EndErr(sp)
		return nil, err
	}
	out := collectSpillFlags(hit, true, ctr)
	sj.ctx.Trace.End(sp, int64(len(out)), int64(len(out))*4)
	return out, nil
}

// AntiJoin implements probeKernel.
func (sj *spillJoiner) AntiJoin(pk []int64, w, mr int, ctr *exec.Counters) ([]int32, error) {
	sp := sj.ctx.Trace.Begin("spill-probe", fmt.Sprintf("anti, %d partitions (%d resident)", sj.rp.NumPartitions(), sj.resident))
	hit, err := sj.matchFlags(pk, w, mr, ctr)
	if err != nil {
		sj.ctx.Trace.EndErr(sp)
		return nil, err
	}
	out := collectSpillFlags(hit, false, ctr)
	sj.ctx.Trace.End(sp, int64(len(out)), int64(len(out))*4)
	return out, nil
}

// CountPerProbe implements probeKernel.
func (sj *spillJoiner) CountPerProbe(pk []int64, w, mr int, ctr *exec.Counters) ([]int64, error) {
	sp := sj.ctx.Trace.Begin("spill-probe", fmt.Sprintf("left-count, %d partitions (%d resident)", sj.rp.NumPartitions(), sj.resident))
	pp, psegs, err := sj.partitionProbe(pk, w, mr, ctr)
	if err != nil {
		sj.ctx.Trace.EndErr(sp)
		return nil, err
	}
	out := make([]int64, len(pk))
	err = sj.forEachPart(pp, psegs, ctr, func(_ int, pt *exec.PartTable, pkeys []int64, prows []int32) {
		for i, k := range pkeys {
			if _, cnt := pt.Lookup(k); cnt > 0 {
				out[prows[i]] = int64(cnt)
			}
		}
		ctr.HashProbeTuples += int64(len(pkeys))
		ctr.CacheRandomAccesses += int64(len(pkeys))
	})
	if err != nil {
		sj.ctx.Trace.EndErr(sp)
		return nil, err
	}
	ctr.SeqBytes += int64(len(pk)) * 8
	sj.ctx.Trace.End(sp, int64(len(pk)), int64(len(pk))*8)
	return out, nil
}

// Spillable reports whether a plan contains an operator the spill
// scheduler can bound under a memory budget. Callers use it to predict
// budget semantics: spillable plans degrade through disk, the rest are
// cancelled with *MemLimitError once they cross the budget.
func Spillable(n Node) bool { return hasSpillableJoin(n) }

// hasSpillableJoin reports whether a compiled plan contains an operator
// the spill scheduler can bound — a hash join in either engine. Queries
// without one keep PR 9's MemLimitError behavior: there is nothing to
// spill, so the budget can only be enforced by cancellation. Unknown
// node types answer false (conservative: the budget still cancels).
func hasSpillableJoin(n Node) bool {
	switch v := n.(type) {
	case *HashJoin:
		return true
	case *Scan:
		return false
	case *Filter:
		return hasSpillableJoin(v.Input)
	case *Project:
		return hasSpillableJoin(v.Input)
	case *Rename:
		return hasSpillableJoin(v.Input)
	case *Limit:
		return hasSpillableJoin(v.Input)
	case *OrderBy:
		return hasSpillableJoin(v.Input)
	case *GroupBy:
		return hasSpillableJoin(v.Input)
	case *spanNode:
		return hasSpillableJoin(v.inner)
	case *Fused:
		for _, st := range v.stages {
			if _, ok := st.(probeStage); ok {
				return true
			}
		}
		if v.input != nil && hasSpillableJoin(v.input) {
			return true
		}
		return v.fallback != nil && hasSpillableJoin(v.fallback)
	case ChildNodes:
		for _, c := range v.Children() {
			if hasSpillableJoin(c) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// ChildNodes is implemented by plan operators defined outside this
// package (the SQL layer's memo and deferred nodes) so plan-tree walks
// — like the spillable-operator scan — can see their inputs.
type ChildNodes interface {
	// Children returns the operator's direct inputs.
	Children() []Node
}
