package plan

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
	"wimpi/internal/obs"
)

// spillBudget forces cancelCatalog's join (≈1.6 MB of join state) onto
// the spill path while leaving room for a resident prefix.
const spillBudget = 256 << 10

// TestSpillJoinMatchesInMemory is the tentpole acceptance check at the
// plan layer: a budget-forced spill run is byte-identical to the
// unlimited in-memory run, for every engine and worker count — and the
// spilled run really moved bytes through the spill area.
func TestSpillJoinMatchesInMemory(t *testing.T) {
	cat := cancelCatalog()
	p := cancelPlan()
	want, _, err := RunContext(&Context{Cat: cat, Workers: 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ExecMode{ExecVector, ExecFused, ExecAuto} {
		for _, w := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s-w%d", mode, w), func(t *testing.T) {
				got, ctr, err := RunContext(&Context{
					Cat: cat, Workers: w, Exec: mode,
					MemLimitBytes: spillBudget, SpillDir: t.TempDir(),
				}, p)
				if err != nil {
					t.Fatal(err)
				}
				if ok, why := colstore.TablesIdentical(want, got); !ok {
					t.Fatalf("spilled result differs from in-memory: %s", why)
				}
				if ctr.SpillWriteBytes == 0 || ctr.SpillReadBytes == 0 {
					t.Fatalf("budget %d never hit the spill area: wrote %d, read %d",
						spillBudget, ctr.SpillWriteBytes, ctr.SpillReadBytes)
				}
				if ctr.ResidentCapBytes != spillBudget {
					t.Fatalf("ResidentCapBytes = %d, want %d", ctr.ResidentCapBytes, spillBudget)
				}
			})
		}
	}
}

// TestSpillJoinAllKinds covers the semi/anti/left-count kernels.
func TestSpillJoinAllKinds(t *testing.T) {
	cat := cancelCatalog()
	for _, kind := range []JoinKind{Semi, Anti, LeftCount} {
		t.Run(kind.String(), func(t *testing.T) {
			p := &HashJoin{
				Build:     &Scan{Table: "cust"},
				BuildKeys: []string{"c_id"},
				Probe:     &Scan{Table: "orders"},
				ProbeKeys: []string{"o_cust"},
				Kind:      kind,
			}
			want, _, err := RunContext(&Context{Cat: cat, Workers: 2}, p)
			if err != nil {
				t.Fatal(err)
			}
			got, ctr, err := RunContext(&Context{
				Cat: cat, Workers: 2,
				MemLimitBytes: spillBudget, SpillDir: t.TempDir(),
			}, p)
			if err != nil {
				t.Fatal(err)
			}
			if ok, why := colstore.TablesIdentical(want, got); !ok {
				t.Fatalf("spilled %s differs: %s", kind, why)
			}
			if ctr.SpillWriteBytes == 0 {
				t.Fatalf("%s never spilled under budget %d", kind, spillBudget)
			}
		})
	}
}

// TestSpillAreaRemovedAfterRun: the per-query spill area (and every
// segment in it) is gone once RunContext returns.
func TestSpillAreaRemovedAfterRun(t *testing.T) {
	cat := cancelCatalog()
	dir := t.TempDir()
	_, _, err := RunContext(&Context{
		Cat: cat, Workers: 2,
		MemLimitBytes: spillBudget, SpillDir: dir,
	}, cancelPlan())
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not cleaned up: %d entries left", len(ents))
	}
}

// TestSpillSpansInTrace: -explain sees the spill through its own spans.
func TestSpillSpansInTrace(t *testing.T) {
	cat := cancelCatalog()
	res, err := RunTracedContext(&Context{
		Cat: cat, Workers: 2,
		MemLimitBytes: spillBudget, SpillDir: t.TempDir(),
	}, cancelPlan())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	res.Root.Walk(func(sp *obs.Span, _ int) { seen[sp.Op] = true })
	for _, op := range []string{"spill-partition", "spill-probe"} {
		if !seen[op] {
			t.Fatalf("trace missing %q span; saw %v", op, seen)
		}
	}
}

// TestBudgetStillCancelsWithoutSpillableOperator: a plan with nothing to
// spill keeps the cancel-with-MemLimitError contract even when a spill
// directory is configured.
func TestBudgetStillCancelsWithoutSpillableOperator(t *testing.T) {
	cat := cancelCatalog()
	p := &OrderBy{
		Input: &Scan{Table: "orders"},
		Keys:  []exec.SortKey{{Column: "o_total", Desc: true}},
	}
	_, _, err := RunContext(&Context{
		Cat: cat, Workers: 2,
		MemLimitBytes: 1 << 10, SpillDir: t.TempDir(),
	}, p)
	var mem *MemLimitError
	if !errors.As(err, &mem) {
		t.Fatalf("err = %v, want *MemLimitError (no spillable operator in plan)", err)
	}
}

// TestSpillDecisionIgnoresWorkers: the spill fan-out and resident prefix
// depend only on cardinalities and the budget.
func TestSpillDecisionIgnoresWorkers(t *testing.T) {
	ctx := &Context{MemLimitBytes: spillBudget, SpillDir: "x", spillOK: true}
	if !ctx.useSpillJoin(4_000, 120_000) {
		t.Fatal("join state above budget must take the spill path")
	}
	if ctx.useSpillJoin(100, 100) {
		t.Fatal("tiny join must stay in memory")
	}
	bits := spillBits(4_000, 120_000, spillBudget)
	if bits == 0 {
		t.Fatal("spill fan-out must partition")
	}
	if b2 := spillBits(4_000, 120_000, spillBudget); b2 != bits {
		t.Fatalf("spillBits not deterministic: %d vs %d", bits, b2)
	}
}
