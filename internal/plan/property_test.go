package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
)

// randTable builds a table of n rows with an int64 key in [0, keyRange),
// a float value and a low-cardinality string tag.
func randTable(rng *rand.Rand, name string, n, keyRange int) *colstore.Table {
	b := colstore.NewTableBuilder(name, colstore.Schema{
		{Name: name + "_key", Type: colstore.Int64},
		{Name: name + "_val", Type: colstore.Float64},
		{Name: name + "_tag", Type: colstore.String},
	})
	tags := []string{"red", "green", "blue"}
	for i := 0; i < n; i++ {
		b.Int(0, rng.Int63n(int64(keyRange)))
		b.Float(1, float64(rng.Intn(1000))/10)
		b.Str(2, tags[rng.Intn(len(tags))])
		b.EndRow()
	}
	return b.Build()
}

func TestInnerJoinPlanAgainstNestedLoopOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		left := randTable(rng, "l", rng.Intn(120), 20)
		right := randTable(rng, "r", rng.Intn(120), 20)
		cat := memCatalog{"l": left, "r": right}
		out, _, err := Run(cat, 1, &HashJoin{
			Build:     &Scan{Table: "l"},
			Probe:     &Scan{Table: "r"},
			BuildKeys: []string{"l_key"},
			ProbeKeys: []string{"r_key"},
			Kind:      Inner,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Nested-loop oracle: count matches per key pair.
		lk := left.MustCol("l_key").(*colstore.Int64s).V
		rk := right.MustCol("r_key").(*colstore.Int64s).V
		want := 0
		for _, a := range lk {
			for _, b := range rk {
				if a == b {
					want++
				}
			}
		}
		if out.NumRows() != want {
			t.Fatalf("trial %d: join rows = %d, oracle %d", trial, out.NumRows(), want)
		}
		// Every output row satisfies the predicate.
		ok := out.MustCol("l_key").(*colstore.Int64s).V
		pk := out.MustCol("r_key").(*colstore.Int64s).V
		for i := range ok {
			if ok[i] != pk[i] {
				t.Fatalf("trial %d: row %d violates join condition", trial, i)
			}
		}
	}
}

func TestSemiAntiPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		left := randTable(rng, "l", rng.Intn(100), 15)
		right := randTable(rng, "r", rng.Intn(100)+1, 15)
		cat := memCatalog{"l": left, "r": right}
		semi, _, err := Run(cat, 1, &HashJoin{
			Build: &Scan{Table: "l"}, Probe: &Scan{Table: "r"},
			BuildKeys: []string{"l_key"}, ProbeKeys: []string{"r_key"}, Kind: Semi,
		})
		if err != nil {
			t.Fatal(err)
		}
		anti, _, err := Run(cat, 1, &HashJoin{
			Build: &Scan{Table: "l"}, Probe: &Scan{Table: "r"},
			BuildKeys: []string{"l_key"}, ProbeKeys: []string{"r_key"}, Kind: Anti,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Semi and anti partition the probe side.
		if semi.NumRows()+anti.NumRows() != right.NumRows() {
			t.Fatalf("trial %d: semi %d + anti %d != probe %d",
				trial, semi.NumRows(), anti.NumRows(), right.NumRows())
		}
	}
}

func TestGroupByAgainstMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		tbl := randTable(rng, "t", rng.Intn(300), 10)
		cat := memCatalog{"t": tbl}
		out, _, err := Run(cat, 1, &GroupBy{
			Input: &Scan{Table: "t"},
			Keys:  []string{"t_key", "t_tag"},
			Aggs: []AggSpec{
				{Name: "s", Func: Sum, Arg: exec.Col{Name: "t_val"}},
				{Name: "n", Func: Count},
				{Name: "mn", Func: Min, Arg: exec.Col{Name: "t_val"}},
				{Name: "mx", Func: Max, Arg: exec.Col{Name: "t_val"}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		type key struct {
			k   int64
			tag string
		}
		type agg struct {
			s, mn, mx float64
			n         int64
		}
		oracle := map[key]*agg{}
		keys := tbl.MustCol("t_key").(*colstore.Int64s).V
		vals := tbl.MustCol("t_val").(*colstore.Float64s).V
		tags := tbl.MustCol("t_tag").(*colstore.Strings)
		for i := range keys {
			k := key{keys[i], tags.Value(i)}
			a := oracle[k]
			if a == nil {
				a = &agg{mn: 1e300, mx: -1e300}
				oracle[k] = a
			}
			a.s += vals[i]
			a.n++
			if vals[i] < a.mn {
				a.mn = vals[i]
			}
			if vals[i] > a.mx {
				a.mx = vals[i]
			}
		}
		if out.NumRows() != len(oracle) {
			t.Fatalf("trial %d: %d groups, oracle %d", trial, out.NumRows(), len(oracle))
		}
		gk := out.MustCol("t_key").(*colstore.Int64s).V
		gt := out.MustCol("t_tag").(*colstore.Strings)
		gs := out.MustCol("s").(*colstore.Float64s).V
		gn := out.MustCol("n").(*colstore.Int64s).V
		gmn := out.MustCol("mn").(*colstore.Float64s).V
		gmx := out.MustCol("mx").(*colstore.Float64s).V
		for i := range gk {
			a := oracle[key{gk[i], gt.Value(i)}]
			if a == nil {
				t.Fatalf("trial %d: unexpected group (%d, %s)", trial, gk[i], gt.Value(i))
			}
			if a.n != gn[i] || !close(a.s, gs[i]) || !close(a.mn, gmn[i]) || !close(a.mx, gmx[i]) {
				t.Fatalf("trial %d: group (%d,%s) = (%g,%d,%g,%g), oracle (%g,%d,%g,%g)",
					trial, gk[i], gt.Value(i), gs[i], gn[i], gmn[i], gmx[i], a.s, a.n, a.mn, a.mx)
			}
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}

func TestOrderByProperty(t *testing.T) {
	f := func(vals []int16) bool {
		b := colstore.NewTableBuilder("t", colstore.Schema{{Name: "v", Type: colstore.Int64}})
		for _, v := range vals {
			b.Int(0, int64(v))
			b.EndRow()
		}
		cat := memCatalog{"t": b.Build()}
		out, _, err := Run(cat, 1, &OrderBy{
			Input: &Scan{Table: "t"},
			Keys:  []exec.SortKey{{Column: "v", Desc: true}},
		})
		if err != nil {
			return false
		}
		got := out.MustCol("v").(*colstore.Int64s).V
		if len(got) != len(vals) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] < got[i] {
				return false
			}
		}
		// Top-3 must equal the first 3 of the full sort.
		top, _, err := Run(cat, 1, &OrderBy{
			Input: &Scan{Table: "t"},
			Keys:  []exec.SortKey{{Column: "v", Desc: true}},
			N:     3,
		})
		if err != nil {
			return false
		}
		tv := top.MustCol("v").(*colstore.Int64s).V
		for i := range tv {
			if tv[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterCompositionProperty(t *testing.T) {
	// filter(p1) . filter(p2) == filter(p1 AND p2)
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 20; trial++ {
		tbl := randTable(rng, "t", rng.Intn(400), 50)
		cat := memCatalog{"t": tbl}
		p1 := exec.CmpI{Column: "t_key", Op: exec.Ge, V: 10}
		p2 := exec.CmpF{Column: "t_val", Op: exec.Lt, V: 60}
		chained, _, err := Run(cat, 1, &Filter{
			Input: &Filter{Input: &Scan{Table: "t"}, Pred: p1},
			Pred:  p2,
		})
		if err != nil {
			t.Fatal(err)
		}
		combined, _, err := Run(cat, 1, &Scan{Table: "t", Pred: exec.AndOf(p1, p2)})
		if err != nil {
			t.Fatal(err)
		}
		if chained.NumRows() != combined.NumRows() {
			t.Fatalf("trial %d: chained %d != combined %d", trial, chained.NumRows(), combined.NumRows())
		}
		a := chained.MustCol("t_key").(*colstore.Int64s).V
		b := combined.MustCol("t_key").(*colstore.Int64s).V
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: row %d differs", trial, i)
			}
		}
	}
}
