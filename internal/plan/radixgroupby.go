package plan

// Radix-partitioned grouped aggregation. When the estimated group count
// would blow the LLC budget, the packed keys are radix-partitioned first
// so each partition's grouper stays cache-resident; partitions aggregate
// independently as morsels.
//
// The output is byte-identical to groupedMorsel's. Group order: within a
// partition rows arrive in ascending original order (the radix scatter
// is stable), so each partition-local group's first occurrence is the
// key's global first occurrence; sorting all partition-local groups by
// first-occurrence row reproduces the global first-occurrence order both
// existing paths emit. Float sums: groupedMorsel folds rows left-to-right
// within each morsel and then folds the per-morsel partials in morsel
// order, so the radix path reproduces that exact association by cutting
// its per-group fold at every morsel boundary.

import (
	"fmt"
	"math"
	"sort"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
)

// estimateGroups estimates the distinct count of keys from a strided
// sample pushed through a small grouper. The stride depends only on the
// input size, so the estimate — and the plan choice it feeds — is
// deterministic and worker-independent. The estimate only sizes the
// radix fan-out; an underestimate costs cache residency (and is caught
// by the hardware model via MaxPartitionBytes), never correctness.
func estimateGroups(keys []int64, ctr *exec.Counters) int {
	n := len(keys)
	stride := n / 4096
	if stride < 1 {
		stride = 1
	}
	sample := make([]int64, 0, n/stride+1)
	for i := 0; i < n; i += stride {
		sample = append(sample, keys[i])
	}
	g := exec.NewGrouper(1024)
	g.GroupIDs(sample, ctr)
	d := g.NumGroups()
	if d*2 < len(sample) {
		// Keys repeat heavily inside the sample: the sample has likely
		// seen most groups, so the sample's distinct count is the
		// estimate.
		return d
	}
	// Mostly-unique sample: distinct count scales with the stride.
	est := d * stride
	if est > n {
		est = n
	}
	return est
}

// radixGroupBytesPerRow estimates the per-group partition footprint for
// sizing the fan-out: grouper slots (2x occupancy, key+gid) plus
// first-row and accumulator state.
func radixGroupBytesPerRow(naggs int) int64 {
	return int64(24 + 4 + 16*naggs)
}

// useRadixGroupBy mirrors useRadixJoin: the decision depends only on the
// estimated group count and the LLC budget, never the worker count.
func useRadixGroupBy(estGroups int, llcBytes int64) bool {
	return llcBytes > 0 && exec.GrouperBytes(estGroups) > llcBytes
}

// radixGroupPart is one partition's aggregation state.
type radixGroupPart struct {
	firstRow []int32 // local gid -> global row of first occurrence
	aggs     []aggState
}

// groupRef locates one partition-local group for the global merge.
type groupRef struct {
	row  int32 // global first-occurrence row (unique: the sort key)
	part int32
	lg   int32
}

// groupedRadix is the radix-partitioned grouped aggregation path.
func (g *GroupBy) groupedRadix(ctx *Context, in *colstore.Table, packed []int64, estGroups int, target int64) (*colstore.Table, error) {
	w, mr := ctx.workers(), ctx.morselRows()

	bits := exec.RadixBits(estGroups, radixGroupBytesPerRow(len(g.Aggs)), target/2)
	sp := ctx.Trace.Begin("group-partition",
		fmt.Sprintf("radix %d-way, %d pass(es)", 1<<bits, exec.RadixPasses(bits)))
	rp, err := exec.RadixPartitionKeys(packed, nil, bits, w, mr, ctx.Ctr)
	if err != nil {
		ctx.Trace.EndErr(sp)
		return nil, err
	}
	ctx.Trace.End(sp, int64(len(packed)), int64(len(packed))*12)

	// Evaluate aggregate arguments once over the unpartitioned input
	// (elementwise, so values match the per-morsel evaluation of the
	// direct path), then route them through the same partition order as
	// the keys.
	fargs := make([][]float64, len(g.Aggs))
	iargs := make([][]int64, len(g.Aggs))
	for si, spec := range g.Aggs {
		switch spec.Func {
		case Count:
			// Pure row count; the argument (if any) is not evaluated,
			// matching aggMorsel.
		case SumI:
			iv, err := aggArgI(ctx, in, spec)
			if err != nil {
				return nil, err
			}
			iargs[si], err = rp.GatherI64(iv, w, mr, ctx.Ctr)
			if err != nil {
				return nil, err
			}
		case Sum, Avg, Min, Max:
			fv, err := aggArg(ctx, in, spec)
			if err != nil {
				return nil, err
			}
			fargs[si], err = rp.GatherF64(fv, w, mr, ctx.Ctr)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("plan: unknown aggregate %d", spec.Func)
		}
	}

	// Each partition aggregates independently into a cache-sized grouper;
	// partitions are morsels, so worker count never changes results.
	np := rp.NumPartitions()
	parts := make([]*radixGroupPart, np)
	err = exec.RunMorsels(w, np, 1, ctx.Ctr, func(p, _, _ int, c *exec.Counters) error {
		lo, hi := int(rp.Off[p]), int(rp.Off[p+1])
		keys := rp.Keys[lo:hi]
		rows := rp.Rows[lo:hi]
		gr := exec.NewGrouper(256)
		gids := gr.GroupIDsCacheResident(keys, c)
		ng := gr.NumGroups()
		part := &radixGroupPart{firstRow: make([]int32, ng), aggs: make([]aggState, len(g.Aggs))}
		for i := range part.firstRow {
			part.firstRow[i] = -1
		}
		for i, gid := range gids {
			if part.firstRow[gid] < 0 {
				part.firstRow[gid] = rows[i]
			}
		}
		for si, spec := range g.Aggs {
			st := &part.aggs[si]
			switch spec.Func {
			case Count:
				st.i = foldCount(gids, ng, c)
			case SumI:
				st.i = foldSumI64(gids, iargs[si][lo:hi], ng, c)
			case Sum:
				st.f = foldSumF64Morsels(gids, rows, fargs[si][lo:hi], ng, mr, c)
			case Avg:
				st.f = foldSumF64Morsels(gids, rows, fargs[si][lo:hi], ng, mr, c)
				st.i = foldCount(gids, ng, c)
			case Min:
				st.f = foldMinMaxF64(gids, fargs[si][lo:hi], ng, false, c)
			case Max:
				st.f = foldMinMaxF64(gids, fargs[si][lo:hi], ng, true, c)
			}
		}
		parts[p] = part
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Global merge: order every partition-local group by its (unique)
	// first-occurrence row. That is exactly the first-occurrence order
	// the direct paths assign group IDs in.
	total := 0
	for _, part := range parts {
		total += len(part.firstRow)
	}
	refs := make([]groupRef, 0, total)
	for p, part := range parts {
		for lg, fr := range part.firstRow {
			refs = append(refs, groupRef{row: fr, part: int32(p), lg: int32(lg)})
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].row < refs[j].row })
	ngroups := len(refs)
	firstRow := make([]int32, ngroups)
	for i, r := range refs {
		firstRow[i] = r.row
	}
	ctx.Ctr.AggUpdates += int64(ngroups) * int64(len(g.Aggs))
	ctx.Ctr.MergeBytes += int64(ngroups) * int64(12+16*len(g.Aggs))

	schema := make(colstore.Schema, 0, len(g.Keys)+len(g.Aggs))
	cols := make([]colstore.Column, 0, len(g.Keys)+len(g.Aggs))
	for _, k := range g.Keys {
		c, err := in.ColByName(k)
		if err != nil {
			return nil, err
		}
		schema = append(schema, colstore.Field{Name: k, Type: c.Type()})
		cols = append(cols, c.Gather(firstRow))
	}
	ctx.Ctr.RandomAccesses += int64(ngroups) * int64(len(g.Keys))

	for si, spec := range g.Aggs {
		var col colstore.Column
		switch spec.Func {
		case Count, SumI:
			out := make([]int64, ngroups)
			for i, r := range refs {
				out[i] = parts[r.part].aggs[si].i[r.lg]
			}
			col = &colstore.Int64s{V: out}
		case Sum, Min, Max:
			out := make([]float64, ngroups)
			for i, r := range refs {
				out[i] = parts[r.part].aggs[si].f[r.lg]
			}
			col = &colstore.Float64s{V: out}
		case Avg:
			out := make([]float64, ngroups)
			for i, r := range refs {
				st := &parts[r.part].aggs[si]
				if st.i[r.lg] > 0 {
					out[i] = st.f[r.lg] / float64(st.i[r.lg])
				}
			}
			ctx.Ctr.FloatOps += int64(ngroups)
			col = &colstore.Float64s{V: out}
		}
		schema = append(schema, colstore.Field{Name: spec.Name, Type: col.Type()})
		cols = append(cols, col)
	}
	out, err := colstore.NewTable("", schema, cols)
	if err != nil {
		return nil, err
	}
	ctx.Ctr.TuplesMaterialized += int64(ngroups)
	ctx.Ctr.BytesMaterialized += out.SizeBytes()
	observe(ctx, in, out)
	return out, nil
}

// foldSumF64Morsels sums vals per group, cutting the fold at every morsel
// boundary of the original row numbers: within a morsel values add left
// to right, and completed morsel partials add in morsel order. That is
// bit-for-bit the association groupedMorsel produces with per-morsel
// ScatterSumF64 partials merged in morsel order.
func foldSumF64Morsels(gids, rows []int32, vals []float64, ng, morselRows int, ctr *exec.Counters) []float64 {
	tot := make([]float64, ng)
	cur := make([]float64, ng)
	lastM := make([]int32, ng)
	for i := range lastM {
		lastM[i] = -1
	}
	for i, gid := range gids {
		m := int32(int(rows[i]) / morselRows)
		if m != lastM[gid] {
			if lastM[gid] >= 0 {
				tot[gid] += cur[gid]
				cur[gid] = 0
			}
			lastM[gid] = m
		}
		cur[gid] += vals[i]
	}
	for gid := range tot {
		if lastM[gid] >= 0 {
			tot[gid] += cur[gid]
		}
	}
	ctr.AggUpdates += int64(len(gids))
	ctr.FloatOps += int64(len(gids)) + int64(ng)
	return tot
}

// foldCount counts rows per group.
func foldCount(gids []int32, ng int, ctr *exec.Counters) []int64 {
	out := make([]int64, ng)
	for _, gid := range gids {
		out[gid]++
	}
	ctr.AggUpdates += int64(len(gids))
	ctr.IntOps += int64(len(gids))
	return out
}

// foldSumI64 sums int64 vals per group (exact, so no morsel cuts needed).
func foldSumI64(gids []int32, vals []int64, ng int, ctr *exec.Counters) []int64 {
	out := make([]int64, ng)
	for i, gid := range gids {
		out[gid] += vals[i]
	}
	ctr.AggUpdates += int64(len(gids))
	ctr.IntOps += int64(len(gids))
	return out
}

// foldMinMaxF64 folds min (or max) per group with the strict comparison
// the Scatter kernels use: NaN inputs are skipped and equal-comparing
// values keep the first in row order, so the result is independent of
// the morsel decomposition.
func foldMinMaxF64(gids []int32, vals []float64, ng int, max bool, ctr *exec.Counters) []float64 {
	fill := math.Inf(1)
	if max {
		fill = math.Inf(-1)
	}
	out := make([]float64, ng)
	for i := range out {
		out[i] = fill
	}
	if max {
		for i, gid := range gids {
			if vals[i] > out[gid] {
				out[gid] = vals[i]
			}
		}
	} else {
		for i, gid := range gids {
			if vals[i] < out[gid] {
				out[gid] = vals[i]
			}
		}
	}
	ctr.AggUpdates += int64(len(gids))
	ctr.FloatOps += int64(len(gids))
	return out
}
