package plan

import (
	"fmt"
	"math"
	"strings"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
)

// AggFunc is an aggregate function.
type AggFunc uint8

// The aggregate functions.
const (
	// Sum adds the argument (float64 result).
	Sum AggFunc = iota
	// Count counts rows; a nil argument means COUNT(*).
	Count
	// Avg averages the argument (float64 result).
	Avg
	// Min takes the minimum of the argument (float64 result).
	Min
	// Max takes the maximum of the argument (float64 result).
	Max
	// SumI adds an int64 argument with an int64 result. It exists for
	// merging distributed partial counts without losing integer typing.
	SumI
)

// String returns the SQL name of the function.
func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return "sumi"
	}
}

// AggSpec describes one aggregate output column.
type AggSpec struct {
	// Name is the output column name.
	Name string
	// Func is the aggregate function.
	Func AggFunc
	// Arg is the aggregated expression; it must be nil only for Count.
	Arg exec.Expr
}

// GroupBy groups its input by the key columns and computes aggregates.
// With no keys it computes scalar aggregates over the whole input,
// producing exactly one row (even for empty input, matching SQL
// aggregation semantics).
//
// Output rows appear in order of first key occurrence; key columns retain
// their input types.
type GroupBy struct {
	// Input is the child operator.
	Input Node
	// Keys name the grouping columns (may be empty).
	Keys []string
	// Aggs are the aggregate outputs.
	Aggs []AggSpec
}

// Execute implements Node.
func (g *GroupBy) Execute(ctx *Context) (*colstore.Table, error) {
	in, err := g.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return g.aggregate(ctx, in)
}

// aggregate groups and aggregates an already-materialized input. It is
// the whole of Execute after the input executes, split out so the fused
// engine can feed the survivors of a compiled pipeline through the exact
// same code: identical rows in identical order take identical morsel
// boundaries and merge order, making the output bit-identical between
// engines.
func (g *GroupBy) aggregate(ctx *Context, in *colstore.Table) (*colstore.Table, error) {
	if len(g.Keys) == 0 {
		return g.scalar(ctx, in)
	}
	// The morsel path is taken whenever the input is large enough —
	// regardless of worker count. Morsel boundaries depend only on input
	// size, and partial aggregates merge in morsel order, so the result
	// (floating-point sums included) is bit-identical at every degree of
	// parallelism. When the estimated group count would blow the LLC
	// budget, the radix-partitioned variant (byte-identical by
	// construction) keeps every grouper cache-resident.
	if in.NumRows() >= ctx.parallelMinRows() {
		packed, err := packKeysParallel(ctx, in, g.Keys)
		if err != nil {
			return nil, err
		}
		if target := ctx.llcBytes(); target > 0 {
			if est := estimateGroups(packed, ctx.Ctr); useRadixGroupBy(est, target) {
				return g.groupedRadix(ctx, in, packed, est, target)
			}
		}
		return g.groupedMorsel(ctx, in, packed)
	}
	packed, err := packKeys(in, g.Keys, ctx.Ctr)
	if err != nil {
		return nil, err
	}
	grouper := exec.NewGrouper(1024)
	gids := grouper.GroupIDs(packed, ctx.Ctr)
	ngroups := grouper.NumGroups()

	firstRow := make([]int32, ngroups)
	for i := range firstRow {
		firstRow[i] = -1
	}
	for i, gid := range gids {
		if firstRow[gid] < 0 {
			firstRow[gid] = int32(i)
		}
	}

	schema := make(colstore.Schema, 0, len(g.Keys)+len(g.Aggs))
	cols := make([]colstore.Column, 0, len(g.Keys)+len(g.Aggs))
	for _, k := range g.Keys {
		c, err := in.ColByName(k)
		if err != nil {
			return nil, err
		}
		schema = append(schema, colstore.Field{Name: k, Type: c.Type()})
		cols = append(cols, c.Gather(firstRow))
	}
	ctx.Ctr.RandomAccesses += int64(ngroups) * int64(len(g.Keys))

	for _, spec := range g.Aggs {
		col, err := evalAgg(ctx, in, spec, gids, ngroups)
		if err != nil {
			return nil, err
		}
		schema = append(schema, colstore.Field{Name: spec.Name, Type: col.Type()})
		cols = append(cols, col)
	}
	out, err := colstore.NewTable("", schema, cols)
	if err != nil {
		return nil, err
	}
	ctx.Ctr.TuplesMaterialized += int64(ngroups)
	ctx.Ctr.BytesMaterialized += out.SizeBytes()
	observe(ctx, in, out)
	return out, nil
}

func (g *GroupBy) scalar(ctx *Context, in *colstore.Table) (*colstore.Table, error) {
	schema := make(colstore.Schema, 0, len(g.Aggs))
	cols := make([]colstore.Column, 0, len(g.Aggs))
	for _, spec := range g.Aggs {
		switch spec.Func {
		case Count:
			schema = append(schema, colstore.Field{Name: spec.Name, Type: colstore.Int64})
			cols = append(cols, &colstore.Int64s{V: []int64{int64(in.NumRows())}})
		case SumI:
			iv, err := aggArgI(ctx, in, spec)
			if err != nil {
				return nil, err
			}
			schema = append(schema, colstore.Field{Name: spec.Name, Type: colstore.Int64})
			cols = append(cols, &colstore.Int64s{V: []int64{exec.SumI64(iv, ctx.Ctr)}})
		default:
			vals, err := aggArg(ctx, in, spec)
			if err != nil {
				return nil, err
			}
			var v float64
			switch spec.Func {
			case Sum:
				v = exec.SumF64(vals, ctx.Ctr)
			case Avg:
				if len(vals) > 0 {
					v = exec.SumF64(vals, ctx.Ctr) / float64(len(vals))
				}
			case Min:
				v = math.Inf(1)
				for _, x := range vals {
					if x < v {
						v = x
					}
				}
				if len(vals) == 0 {
					v = 0
				}
				ctx.Ctr.FloatOps += int64(len(vals))
			case Max:
				v = math.Inf(-1)
				for _, x := range vals {
					if x > v {
						v = x
					}
				}
				if len(vals) == 0 {
					v = 0
				}
				ctx.Ctr.FloatOps += int64(len(vals))
			}
			schema = append(schema, colstore.Field{Name: spec.Name, Type: colstore.Float64})
			cols = append(cols, &colstore.Float64s{V: []float64{v}})
		}
	}
	return colstore.NewTable("", schema, cols)
}

func aggArgI(ctx *Context, in *colstore.Table, spec AggSpec) ([]int64, error) {
	if spec.Arg == nil {
		return nil, fmt.Errorf("plan: %s(%s) needs an argument", spec.Func, spec.Name)
	}
	c, err := evalExprParallel(ctx, in, spec.Arg)
	if err != nil {
		return nil, fmt.Errorf("plan: agg %s: %w", spec.Name, err)
	}
	iv, err := exec.AsInt64(c, ctx.Ctr)
	if err != nil {
		return nil, fmt.Errorf("plan: agg %s: sumi needs an int64 argument: %w", spec.Name, err)
	}
	return iv, nil
}

func aggArg(ctx *Context, in *colstore.Table, spec AggSpec) ([]float64, error) {
	if spec.Arg == nil {
		return nil, fmt.Errorf("plan: %s(%s) needs an argument", spec.Func, spec.Name)
	}
	c, err := evalExprParallel(ctx, in, spec.Arg)
	if err != nil {
		return nil, fmt.Errorf("plan: agg %s: %w", spec.Name, err)
	}
	return exec.AsFloat64(c, ctx.Ctr)
}

// evalAggArg evaluates spec's argument over in (typically a morsel
// slice) as float64 values, charging ctr.
func evalAggArg(in *colstore.Table, spec AggSpec, ctr *exec.Counters) ([]float64, error) {
	if spec.Arg == nil {
		return nil, fmt.Errorf("plan: %s(%s) needs an argument", spec.Func, spec.Name)
	}
	c, err := spec.Arg.Eval(in, ctr)
	if err != nil {
		return nil, fmt.Errorf("plan: agg %s: %w", spec.Name, err)
	}
	return exec.AsFloat64(c, ctr)
}

// evalAggArgI is evalAggArg for int64 arguments (SumI).
func evalAggArgI(in *colstore.Table, spec AggSpec, ctr *exec.Counters) ([]int64, error) {
	if spec.Arg == nil {
		return nil, fmt.Errorf("plan: %s(%s) needs an argument", spec.Func, spec.Name)
	}
	c, err := spec.Arg.Eval(in, ctr)
	if err != nil {
		return nil, fmt.Errorf("plan: agg %s: %w", spec.Name, err)
	}
	iv, err := exec.AsInt64(c, ctr)
	if err != nil {
		return nil, fmt.Errorf("plan: agg %s: sumi needs an int64 argument: %w", spec.Name, err)
	}
	return iv, nil
}

func evalAgg(ctx *Context, in *colstore.Table, spec AggSpec, gids []int32, ngroups int) (colstore.Column, error) {
	if spec.Func == Count && spec.Arg == nil {
		var counts []int64
		exec.ScatterCount(gids, &counts, ngroups, ctx.Ctr)
		return &colstore.Int64s{V: counts}, nil
	}
	if spec.Func == SumI {
		iv, err := aggArgI(ctx, in, spec)
		if err != nil {
			return nil, err
		}
		var sums []int64
		exec.ScatterSumI64(gids, iv, &sums, ngroups, ctx.Ctr)
		return &colstore.Int64s{V: sums}, nil
	}
	vals, err := aggArg(ctx, in, spec)
	if err != nil {
		return nil, err
	}
	switch spec.Func {
	case Sum:
		var sums []float64
		exec.ScatterSumF64(gids, vals, &sums, ngroups, ctx.Ctr)
		return &colstore.Float64s{V: sums}, nil
	case Count:
		var counts []int64
		exec.ScatterCount(gids, &counts, ngroups, ctx.Ctr)
		return &colstore.Int64s{V: counts}, nil
	case Avg:
		var sums []float64
		var counts []int64
		exec.ScatterSumF64(gids, vals, &sums, ngroups, ctx.Ctr)
		exec.ScatterCount(gids, &counts, ngroups, ctx.Ctr)
		out := make([]float64, ngroups)
		for i := range out {
			if counts[i] > 0 {
				out[i] = sums[i] / float64(counts[i])
			}
		}
		ctx.Ctr.FloatOps += int64(ngroups)
		return &colstore.Float64s{V: out}, nil
	case Min:
		var mins []float64
		exec.ScatterMinF64(gids, vals, &mins, ngroups, math.Inf(1), ctx.Ctr)
		return &colstore.Float64s{V: mins}, nil
	case Max:
		var maxs []float64
		exec.ScatterMaxF64(gids, vals, &maxs, ngroups, math.Inf(-1), ctx.Ctr)
		return &colstore.Float64s{V: maxs}, nil
	default:
		return nil, fmt.Errorf("plan: unknown aggregate %d", spec.Func)
	}
}

// Explain implements Node.
func (g *GroupBy) Explain(depth int) string {
	aggs := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		arg := "*"
		if a.Arg != nil {
			arg = a.Arg.String()
		}
		aggs[i] = fmt.Sprintf("%s=%s(%s)", a.Name, a.Func, arg)
	}
	return fmt.Sprintf("%sgroup by [%s] %s\n%s",
		pad(depth), strings.Join(g.Keys, ", "), strings.Join(aggs, ", "),
		g.Input.Explain(depth+1))
}

// packKeys encodes one or more grouping columns into single 64-bit keys,
// sizing each component's bit width from its maximum value. Negative key
// values are rejected.
func packKeys(t *colstore.Table, names []string, ctr *exec.Counters) ([]int64, error) {
	vecs := make([][]int64, len(names))
	for i, name := range names {
		c, err := t.ColByName(name)
		if err != nil {
			return nil, err
		}
		v, err := exec.KeysFromColumn(c, nil, ctr)
		if err != nil {
			return nil, fmt.Errorf("plan: group key %s: %w", name, err)
		}
		vecs[i] = v
	}
	if len(vecs) == 1 {
		return vecs[0], nil
	}
	// Compute bit widths.
	bits := make([]uint, len(vecs))
	var total uint
	for i, v := range vecs {
		var max int64
		for _, x := range v {
			if x < 0 {
				return nil, fmt.Errorf("plan: group key %s has negative value %d", names[i], x)
			}
			if x > max {
				max = x
			}
		}
		b := uint(1)
		for int64(1)<<b <= max {
			b++
		}
		bits[i] = b
		total += b
	}
	if total > 63 {
		return nil, fmt.Errorf("plan: group keys %v need %d bits, max 63", names, total)
	}
	n := t.NumRows()
	out := make([]int64, n)
	copy(out, vecs[0])
	for i := 1; i < len(vecs); i++ {
		b := bits[i]
		v := vecs[i]
		for r := 0; r < n; r++ {
			out[r] = out[r]<<b | v[r]
		}
	}
	ctr.IntOps += int64(n) * int64(len(vecs))
	return out, nil
}

// aggState holds the accumulators for one aggregate spec — for a single
// morsel, or for the merged global result. Which slices are live depends
// on the function: Sum/Min/Max use f, Count/SumI use i, Avg uses both.
type aggState struct {
	f []float64
	i []int64
}

// groupPart is one morsel's thread-local aggregation state.
type groupPart struct {
	grouper  *exec.Grouper
	firstRow []int32 // local gid -> global row of first occurrence
	aggs     []aggState
}

// groupedMorsel is the morsel-parallel grouped aggregation over
// already-packed keys: each morsel aggregates into a thread-local hash
// table, and the locals are folded into the global table in a final
// single pass, in morsel order. Because global group IDs are assigned in
// order of first key occurrence across morsels processed in order, group
// order matches the sequential Grouper exactly.
func (g *GroupBy) groupedMorsel(ctx *Context, in *colstore.Table, packed []int64) (*colstore.Table, error) {
	n := in.NumRows()
	var err error
	nm := exec.NumMorsels(n, ctx.morselRows())
	parts := make([]*groupPart, nm)
	err = exec.RunMorsels(ctx.workers(), n, ctx.morselRows(), ctx.Ctr, func(m, lo, hi int, ctr *exec.Counters) error {
		p, err := g.aggMorsel(in, packed, lo, hi, ctr)
		if err != nil {
			return err
		}
		parts[m] = p
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Single-threaded merge, in morsel order.
	merged := exec.NewGrouper(1024)
	var firstRow []int32
	aggs := make([]aggState, len(g.Aggs))
	for _, p := range parts {
		lkeys := p.grouper.GroupKeys()
		g2l := merged.GroupIDs(lkeys, ctx.Ctr)
		ng := merged.NumGroups()
		for len(firstRow) < ng {
			firstRow = append(firstRow, -1)
		}
		for lg, gg := range g2l {
			if firstRow[gg] < 0 {
				firstRow[gg] = p.firstRow[lg]
			}
		}
		for si := range g.Aggs {
			mergeAggState(&aggs[si], &p.aggs[si], g2l, ng, g.Aggs[si].Func)
		}
		ctx.Ctr.AggUpdates += int64(len(lkeys)) * int64(len(g.Aggs))
		ctx.Ctr.MergeBytes += int64(len(lkeys)) * int64(12+16*len(g.Aggs))
	}
	ngroups := merged.NumGroups()

	schema := make(colstore.Schema, 0, len(g.Keys)+len(g.Aggs))
	cols := make([]colstore.Column, 0, len(g.Keys)+len(g.Aggs))
	for _, k := range g.Keys {
		c, err := in.ColByName(k)
		if err != nil {
			return nil, err
		}
		schema = append(schema, colstore.Field{Name: k, Type: c.Type()})
		cols = append(cols, c.Gather(firstRow))
	}
	ctx.Ctr.RandomAccesses += int64(ngroups) * int64(len(g.Keys))

	for si, spec := range g.Aggs {
		st := &aggs[si]
		var col colstore.Column
		switch spec.Func {
		case Count, SumI:
			growI(&st.i, ngroups, 0)
			col = &colstore.Int64s{V: st.i}
		case Sum:
			growF(&st.f, ngroups, 0)
			col = &colstore.Float64s{V: st.f}
		case Avg:
			growF(&st.f, ngroups, 0)
			growI(&st.i, ngroups, 0)
			out := make([]float64, ngroups)
			for i := range out {
				if st.i[i] > 0 {
					out[i] = st.f[i] / float64(st.i[i])
				}
			}
			ctx.Ctr.FloatOps += int64(ngroups)
			col = &colstore.Float64s{V: out}
		case Min:
			growF(&st.f, ngroups, math.Inf(1))
			col = &colstore.Float64s{V: st.f}
		case Max:
			growF(&st.f, ngroups, math.Inf(-1))
			col = &colstore.Float64s{V: st.f}
		default:
			return nil, fmt.Errorf("plan: unknown aggregate %d", spec.Func)
		}
		schema = append(schema, colstore.Field{Name: spec.Name, Type: col.Type()})
		cols = append(cols, col)
	}
	out, err := colstore.NewTable("", schema, cols)
	if err != nil {
		return nil, err
	}
	ctx.Ctr.TuplesMaterialized += int64(ngroups)
	ctx.Ctr.BytesMaterialized += out.SizeBytes()
	observe(ctx, in, out)
	return out, nil
}

// aggMorsel aggregates rows [lo, hi) into a fresh thread-local state.
func (g *GroupBy) aggMorsel(in *colstore.Table, packed []int64, lo, hi int, ctr *exec.Counters) (*groupPart, error) {
	sub := in.Slice(lo, hi)
	p := &groupPart{grouper: exec.NewGrouper(256), aggs: make([]aggState, len(g.Aggs))}
	gids := p.grouper.GroupIDs(packed[lo:hi], ctr)
	ng := p.grouper.NumGroups()
	p.firstRow = make([]int32, ng)
	for i := range p.firstRow {
		p.firstRow[i] = -1
	}
	for i, gid := range gids {
		if p.firstRow[gid] < 0 {
			p.firstRow[gid] = int32(lo + i)
		}
	}
	for si, spec := range g.Aggs {
		st := &p.aggs[si]
		switch spec.Func {
		case Count:
			exec.ScatterCount(gids, &st.i, ng, ctr)
		case SumI:
			iv, err := evalAggArgI(sub, spec, ctr)
			if err != nil {
				return nil, err
			}
			exec.ScatterSumI64(gids, iv, &st.i, ng, ctr)
		case Sum:
			vals, err := evalAggArg(sub, spec, ctr)
			if err != nil {
				return nil, err
			}
			exec.ScatterSumF64(gids, vals, &st.f, ng, ctr)
		case Avg:
			vals, err := evalAggArg(sub, spec, ctr)
			if err != nil {
				return nil, err
			}
			exec.ScatterSumF64(gids, vals, &st.f, ng, ctr)
			exec.ScatterCount(gids, &st.i, ng, ctr)
		case Min:
			vals, err := evalAggArg(sub, spec, ctr)
			if err != nil {
				return nil, err
			}
			exec.ScatterMinF64(gids, vals, &st.f, ng, math.Inf(1), ctr)
		case Max:
			vals, err := evalAggArg(sub, spec, ctr)
			if err != nil {
				return nil, err
			}
			exec.ScatterMaxF64(gids, vals, &st.f, ng, math.Inf(-1), ctr)
		default:
			return nil, fmt.Errorf("plan: unknown aggregate %d", spec.Func)
		}
	}
	return p, nil
}

// mergeAggState folds a morsel's local accumulators into the global
// state through the local-to-global group ID mapping.
func mergeAggState(dst, src *aggState, g2l []int32, ng int, fn AggFunc) {
	switch fn {
	case Sum:
		growF(&dst.f, ng, 0)
		for lg, v := range src.f {
			dst.f[g2l[lg]] += v
		}
	case Count, SumI:
		growI(&dst.i, ng, 0)
		for lg, v := range src.i {
			dst.i[g2l[lg]] += v
		}
	case Avg:
		growF(&dst.f, ng, 0)
		growI(&dst.i, ng, 0)
		for lg, v := range src.f {
			dst.f[g2l[lg]] += v
		}
		for lg, v := range src.i {
			dst.i[g2l[lg]] += v
		}
	case Min:
		growF(&dst.f, ng, math.Inf(1))
		for lg, v := range src.f {
			if v < dst.f[g2l[lg]] {
				dst.f[g2l[lg]] = v
			}
		}
	case Max:
		growF(&dst.f, ng, math.Inf(-1))
		for lg, v := range src.f {
			if v > dst.f[g2l[lg]] {
				dst.f[g2l[lg]] = v
			}
		}
	}
}

func growF(s *[]float64, n int, fill float64) {
	for len(*s) < n {
		*s = append(*s, fill)
	}
}

func growI(s *[]int64, n int, fill int64) {
	for len(*s) < n {
		*s = append(*s, fill)
	}
}

// packKeysParallel is packKeys with the per-row work — key extraction
// and bit packing — split into morsels. Bit widths come from exact
// global maxima, so the encoding is identical to the sequential pack.
func packKeysParallel(ctx *Context, t *colstore.Table, names []string) ([]int64, error) {
	w := ctx.workers()
	n := t.NumRows()
	mr := ctx.morselRows()
	vecs := make([][]int64, len(names))
	for i, name := range names {
		c, err := t.ColByName(name)
		if err != nil {
			return nil, err
		}
		out := make([]int64, n)
		err = exec.RunMorsels(w, n, mr, ctx.Ctr, func(m, lo, hi int, ctr *exec.Counters) error {
			v, err := exec.KeysFromColumn(c.Slice(lo, hi), nil, ctr)
			if err != nil {
				return fmt.Errorf("plan: group key %s: %w", name, err)
			}
			copy(out[lo:hi], v)
			return nil
		})
		if err != nil {
			return nil, err
		}
		vecs[i] = out
	}
	if len(vecs) == 1 {
		return vecs[0], nil
	}
	bits := make([]uint, len(vecs))
	var total uint
	for i, v := range vecs {
		var max int64
		for _, x := range v {
			if x < 0 {
				return nil, fmt.Errorf("plan: group key %s has negative value %d", names[i], x)
			}
			if x > max {
				max = x
			}
		}
		b := uint(1)
		for int64(1)<<b <= max {
			b++
		}
		bits[i] = b
		total += b
	}
	if total > 63 {
		return nil, fmt.Errorf("plan: group keys %v need %d bits, max 63", names, total)
	}
	out := make([]int64, n)
	err := exec.RunMorsels(w, n, mr, ctx.Ctr, func(m, lo, hi int, ctr *exec.Counters) error {
		for r := lo; r < hi; r++ {
			k := vecs[0][r]
			for i := 1; i < len(vecs); i++ {
				k = k<<bits[i] | vecs[i][r]
			}
			out[r] = k
		}
		ctr.IntOps += int64(hi-lo) * int64(len(vecs))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
