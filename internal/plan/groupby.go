package plan

import (
	"fmt"
	"math"
	"strings"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
)

// AggFunc is an aggregate function.
type AggFunc uint8

// The aggregate functions.
const (
	// Sum adds the argument (float64 result).
	Sum AggFunc = iota
	// Count counts rows; a nil argument means COUNT(*).
	Count
	// Avg averages the argument (float64 result).
	Avg
	// Min takes the minimum of the argument (float64 result).
	Min
	// Max takes the maximum of the argument (float64 result).
	Max
	// SumI adds an int64 argument with an int64 result. It exists for
	// merging distributed partial counts without losing integer typing.
	SumI
)

// String returns the SQL name of the function.
func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return "sumi"
	}
}

// AggSpec describes one aggregate output column.
type AggSpec struct {
	// Name is the output column name.
	Name string
	// Func is the aggregate function.
	Func AggFunc
	// Arg is the aggregated expression; it must be nil only for Count.
	Arg exec.Expr
}

// GroupBy groups its input by the key columns and computes aggregates.
// With no keys it computes scalar aggregates over the whole input,
// producing exactly one row (even for empty input, matching SQL
// aggregation semantics).
//
// Output rows appear in order of first key occurrence; key columns retain
// their input types.
type GroupBy struct {
	// Input is the child operator.
	Input Node
	// Keys name the grouping columns (may be empty).
	Keys []string
	// Aggs are the aggregate outputs.
	Aggs []AggSpec
}

// Execute implements Node.
func (g *GroupBy) Execute(ctx *Context) (*colstore.Table, error) {
	in, err := g.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	if len(g.Keys) == 0 {
		return g.scalar(ctx, in)
	}
	packed, err := packKeys(in, g.Keys, ctx.Ctr)
	if err != nil {
		return nil, err
	}
	grouper := exec.NewGrouper(1024)
	gids := grouper.GroupIDs(packed, ctx.Ctr)
	ngroups := grouper.NumGroups()

	firstRow := make([]int32, ngroups)
	for i := range firstRow {
		firstRow[i] = -1
	}
	for i, gid := range gids {
		if firstRow[gid] < 0 {
			firstRow[gid] = int32(i)
		}
	}

	schema := make(colstore.Schema, 0, len(g.Keys)+len(g.Aggs))
	cols := make([]colstore.Column, 0, len(g.Keys)+len(g.Aggs))
	for _, k := range g.Keys {
		c, err := in.ColByName(k)
		if err != nil {
			return nil, err
		}
		schema = append(schema, colstore.Field{Name: k, Type: c.Type()})
		cols = append(cols, c.Gather(firstRow))
	}
	ctx.Ctr.RandomAccesses += int64(ngroups) * int64(len(g.Keys))

	for _, spec := range g.Aggs {
		col, err := evalAgg(ctx, in, spec, gids, ngroups)
		if err != nil {
			return nil, err
		}
		schema = append(schema, colstore.Field{Name: spec.Name, Type: col.Type()})
		cols = append(cols, col)
	}
	out, err := colstore.NewTable("", schema, cols)
	if err != nil {
		return nil, err
	}
	ctx.Ctr.TuplesMaterialized += int64(ngroups)
	ctx.Ctr.BytesMaterialized += out.SizeBytes()
	observe(ctx, in, out)
	return out, nil
}

func (g *GroupBy) scalar(ctx *Context, in *colstore.Table) (*colstore.Table, error) {
	schema := make(colstore.Schema, 0, len(g.Aggs))
	cols := make([]colstore.Column, 0, len(g.Aggs))
	for _, spec := range g.Aggs {
		switch spec.Func {
		case Count:
			schema = append(schema, colstore.Field{Name: spec.Name, Type: colstore.Int64})
			cols = append(cols, &colstore.Int64s{V: []int64{int64(in.NumRows())}})
		case SumI:
			iv, err := aggArgI(ctx, in, spec)
			if err != nil {
				return nil, err
			}
			schema = append(schema, colstore.Field{Name: spec.Name, Type: colstore.Int64})
			cols = append(cols, &colstore.Int64s{V: []int64{exec.SumI64(iv, ctx.Ctr)}})
		default:
			vals, err := aggArg(ctx, in, spec)
			if err != nil {
				return nil, err
			}
			var v float64
			switch spec.Func {
			case Sum:
				v = exec.SumF64(vals, ctx.Ctr)
			case Avg:
				if len(vals) > 0 {
					v = exec.SumF64(vals, ctx.Ctr) / float64(len(vals))
				}
			case Min:
				v = math.Inf(1)
				for _, x := range vals {
					if x < v {
						v = x
					}
				}
				if len(vals) == 0 {
					v = 0
				}
				ctx.Ctr.FloatOps += int64(len(vals))
			case Max:
				v = math.Inf(-1)
				for _, x := range vals {
					if x > v {
						v = x
					}
				}
				if len(vals) == 0 {
					v = 0
				}
				ctx.Ctr.FloatOps += int64(len(vals))
			}
			schema = append(schema, colstore.Field{Name: spec.Name, Type: colstore.Float64})
			cols = append(cols, &colstore.Float64s{V: []float64{v}})
		}
	}
	return colstore.NewTable("", schema, cols)
}

func aggArgI(ctx *Context, in *colstore.Table, spec AggSpec) ([]int64, error) {
	if spec.Arg == nil {
		return nil, fmt.Errorf("plan: %s(%s) needs an argument", spec.Func, spec.Name)
	}
	c, err := spec.Arg.Eval(in, ctx.Ctr)
	if err != nil {
		return nil, fmt.Errorf("plan: agg %s: %w", spec.Name, err)
	}
	ic, ok := c.(*colstore.Int64s)
	if !ok {
		return nil, fmt.Errorf("plan: agg %s: sumi needs an int64 argument, got %s", spec.Name, c.Type())
	}
	return ic.V, nil
}

func aggArg(ctx *Context, in *colstore.Table, spec AggSpec) ([]float64, error) {
	if spec.Arg == nil {
		return nil, fmt.Errorf("plan: %s(%s) needs an argument", spec.Func, spec.Name)
	}
	c, err := spec.Arg.Eval(in, ctx.Ctr)
	if err != nil {
		return nil, fmt.Errorf("plan: agg %s: %w", spec.Name, err)
	}
	return exec.AsFloat64(c, ctx.Ctr)
}

func evalAgg(ctx *Context, in *colstore.Table, spec AggSpec, gids []int32, ngroups int) (colstore.Column, error) {
	if spec.Func == Count && spec.Arg == nil {
		var counts []int64
		exec.ScatterCount(gids, &counts, ngroups, ctx.Ctr)
		return &colstore.Int64s{V: counts}, nil
	}
	if spec.Func == SumI {
		iv, err := aggArgI(ctx, in, spec)
		if err != nil {
			return nil, err
		}
		var sums []int64
		exec.ScatterSumI64(gids, iv, &sums, ngroups, ctx.Ctr)
		return &colstore.Int64s{V: sums}, nil
	}
	vals, err := aggArg(ctx, in, spec)
	if err != nil {
		return nil, err
	}
	switch spec.Func {
	case Sum:
		var sums []float64
		exec.ScatterSumF64(gids, vals, &sums, ngroups, ctx.Ctr)
		return &colstore.Float64s{V: sums}, nil
	case Count:
		var counts []int64
		exec.ScatterCount(gids, &counts, ngroups, ctx.Ctr)
		return &colstore.Int64s{V: counts}, nil
	case Avg:
		var sums []float64
		var counts []int64
		exec.ScatterSumF64(gids, vals, &sums, ngroups, ctx.Ctr)
		exec.ScatterCount(gids, &counts, ngroups, ctx.Ctr)
		out := make([]float64, ngroups)
		for i := range out {
			if counts[i] > 0 {
				out[i] = sums[i] / float64(counts[i])
			}
		}
		ctx.Ctr.FloatOps += int64(ngroups)
		return &colstore.Float64s{V: out}, nil
	case Min:
		var mins []float64
		exec.ScatterMinF64(gids, vals, &mins, ngroups, math.Inf(1), ctx.Ctr)
		return &colstore.Float64s{V: mins}, nil
	case Max:
		var maxs []float64
		exec.ScatterMaxF64(gids, vals, &maxs, ngroups, math.Inf(-1), ctx.Ctr)
		return &colstore.Float64s{V: maxs}, nil
	default:
		return nil, fmt.Errorf("plan: unknown aggregate %d", spec.Func)
	}
}

// Explain implements Node.
func (g *GroupBy) Explain(depth int) string {
	aggs := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		arg := "*"
		if a.Arg != nil {
			arg = a.Arg.String()
		}
		aggs[i] = fmt.Sprintf("%s=%s(%s)", a.Name, a.Func, arg)
	}
	return fmt.Sprintf("%sgroup by [%s] %s\n%s",
		pad(depth), strings.Join(g.Keys, ", "), strings.Join(aggs, ", "),
		g.Input.Explain(depth+1))
}

// packKeys encodes one or more grouping columns into single 64-bit keys,
// sizing each component's bit width from its maximum value. Negative key
// values are rejected.
func packKeys(t *colstore.Table, names []string, ctr *exec.Counters) ([]int64, error) {
	vecs := make([][]int64, len(names))
	for i, name := range names {
		c, err := t.ColByName(name)
		if err != nil {
			return nil, err
		}
		v, err := exec.KeysFromColumn(c, nil, ctr)
		if err != nil {
			return nil, fmt.Errorf("plan: group key %s: %w", name, err)
		}
		vecs[i] = v
	}
	if len(vecs) == 1 {
		return vecs[0], nil
	}
	// Compute bit widths.
	bits := make([]uint, len(vecs))
	var total uint
	for i, v := range vecs {
		var max int64
		for _, x := range v {
			if x < 0 {
				return nil, fmt.Errorf("plan: group key %s has negative value %d", names[i], x)
			}
			if x > max {
				max = x
			}
		}
		b := uint(1)
		for int64(1)<<b <= max {
			b++
		}
		bits[i] = b
		total += b
	}
	if total > 63 {
		return nil, fmt.Errorf("plan: group keys %v need %d bits, max 63", names, total)
	}
	n := t.NumRows()
	out := make([]int64, n)
	copy(out, vecs[0])
	for i := 1; i < len(vecs); i++ {
		b := bits[i]
		v := vecs[i]
		for r := 0; r < n; r++ {
			out[r] = out[r]<<b | v[r]
		}
	}
	ctr.IntOps += int64(n) * int64(len(vecs))
	return out, nil
}
