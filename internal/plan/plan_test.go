package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
)

// memCatalog is a trivial Catalog for tests.
type memCatalog map[string]*colstore.Table

func (m memCatalog) Table(name string) (*colstore.Table, error) {
	t, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return t, nil
}

func testCatalog() memCatalog {
	// orders(o_id, o_cust, o_total, o_date, o_status)
	ob := colstore.NewTableBuilder("orders", colstore.Schema{
		{Name: "o_id", Type: colstore.Int64},
		{Name: "o_cust", Type: colstore.Int64},
		{Name: "o_total", Type: colstore.Float64},
		{Name: "o_date", Type: colstore.Date},
		{Name: "o_status", Type: colstore.String},
	})
	orders := []struct {
		id, cust int64
		total    float64
		date     string
		status   string
	}{
		{1, 10, 100, "1994-01-01", "OPEN"},
		{2, 10, 50, "1994-02-01", "DONE"},
		{3, 20, 75, "1994-03-01", "OPEN"},
		{4, 30, 25, "1995-01-01", "DONE"},
		{5, 20, 125, "1995-06-01", "OPEN"},
	}
	for _, o := range orders {
		ob.Int(0, o.id)
		ob.Int(1, o.cust)
		ob.Float(2, o.total)
		ob.Date(3, colstore.MustDate(o.date))
		ob.Str(4, o.status)
		ob.EndRow()
	}
	// cust(c_id, c_name)
	cb := colstore.NewTableBuilder("cust", colstore.Schema{
		{Name: "c_id", Type: colstore.Int64},
		{Name: "c_name", Type: colstore.String},
	})
	for _, c := range []struct {
		id   int64
		name string
	}{{10, "alice"}, {20, "bob"}, {30, "carol"}, {40, "dave"}} {
		cb.Int(0, c.id)
		cb.Str(1, c.name)
		cb.EndRow()
	}
	return memCatalog{"orders": ob.Build(), "cust": cb.Build()}
}

func mustRun(t *testing.T, cat Catalog, n Node) *colstore.Table {
	t.Helper()
	out, _, err := Run(cat, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestScanAndFilter(t *testing.T) {
	cat := testCatalog()
	// Bare scan is zero-copy.
	out := mustRun(t, cat, &Scan{Table: "orders"})
	if out.NumRows() != 5 {
		t.Fatalf("scan rows = %d", out.NumRows())
	}
	// Scan with projection and predicate.
	out = mustRun(t, cat, &Scan{
		Table:   "orders",
		Columns: []string{"o_id", "o_total"},
		Pred:    exec.CmpF{Column: "o_total", Op: exec.Ge, V: 75},
	})
	if out.NumRows() != 3 || out.NumCols() != 2 {
		t.Fatalf("filtered scan = %dx%d", out.NumRows(), out.NumCols())
	}
	// Filter node over a scan.
	out = mustRun(t, cat, &Filter{
		Input: &Scan{Table: "orders"},
		Pred:  exec.StrEq{Column: "o_status", V: "OPEN"},
	})
	if out.NumRows() != 3 {
		t.Fatalf("filter rows = %d", out.NumRows())
	}
	// Missing table and column errors.
	if _, _, err := Run(cat, 1, &Scan{Table: "nope"}); err == nil {
		t.Error("scan of missing table should error")
	}
	if _, _, err := Run(cat, 1, &Scan{Table: "orders", Columns: []string{"zzz"}}); err == nil {
		t.Error("projection of missing column should error")
	}
	if _, _, err := Run(cat, 1, &Filter{Input: &Scan{Table: "orders"}, Pred: exec.CmpI{Column: "zzz"}}); err == nil {
		t.Error("filter on missing column should error")
	}
}

func TestProjectAndRename(t *testing.T) {
	cat := testCatalog()
	out := mustRun(t, cat, &Project{
		Input: &Scan{Table: "orders"},
		Cols: []NamedExpr{
			{Name: "id", Expr: exec.Col{Name: "o_id"}},
			{Name: "half", Expr: exec.Div(exec.Col{Name: "o_total"}, exec.ConstF{V: 2})},
			{Name: "yr", Expr: exec.YearExpr{Arg: exec.Col{Name: "o_date"}}},
		},
	})
	if out.NumCols() != 3 {
		t.Fatalf("project cols = %d", out.NumCols())
	}
	if out.MustCol("half").(*colstore.Float64s).V[0] != 50 {
		t.Error("computed column wrong")
	}
	if out.MustCol("yr").(*colstore.Int64s).V[4] != 1995 {
		t.Error("year column wrong")
	}

	ren := mustRun(t, cat, &Rename{
		Input: &Scan{Table: "cust"},
		Pairs: [][2]string{{"c_id", "id2"}},
	})
	if ren.Schema.Index("id2") < 0 || ren.Schema.Index("c_id") >= 0 {
		t.Error("rename failed")
	}
	if _, _, err := Run(cat, 1, &Rename{Input: &Scan{Table: "cust"}, Pairs: [][2]string{{"zzz", "a"}}}); err == nil {
		t.Error("rename of missing column should error")
	}
	if _, _, err := Run(cat, 1, &Project{Input: &Scan{Table: "cust"}, Cols: []NamedExpr{{Name: "x", Expr: exec.Col{Name: "zzz"}}}}); err == nil {
		t.Error("project of missing column should error")
	}
}

func TestHashJoinKinds(t *testing.T) {
	cat := testCatalog()
	join := &HashJoin{
		Build:     &Scan{Table: "cust"},
		Probe:     &Scan{Table: "orders"},
		BuildKeys: []string{"c_id"},
		ProbeKeys: []string{"o_cust"},
		Kind:      Inner,
	}
	out := mustRun(t, cat, join)
	if out.NumRows() != 5 {
		t.Fatalf("inner join rows = %d", out.NumRows())
	}
	if out.Schema.Index("c_name") < 0 || out.Schema.Index("o_total") < 0 {
		t.Error("inner join missing columns")
	}
	// Every row must satisfy the join condition.
	cid := out.MustCol("c_id").(*colstore.Int64s).V
	ocust := out.MustCol("o_cust").(*colstore.Int64s).V
	for i := range cid {
		if cid[i] != ocust[i] {
			t.Fatalf("join row %d violates condition", i)
		}
	}

	semi := mustRun(t, cat, &HashJoin{
		Build:     &Scan{Table: "orders", Pred: exec.StrEq{Column: "o_status", V: "OPEN"}},
		Probe:     &Scan{Table: "cust"},
		BuildKeys: []string{"o_cust"},
		ProbeKeys: []string{"c_id"},
		Kind:      Semi,
	})
	if semi.NumRows() != 2 { // alice and bob have OPEN orders
		t.Fatalf("semi join rows = %d", semi.NumRows())
	}
	anti := mustRun(t, cat, &HashJoin{
		Build:     &Scan{Table: "orders"},
		Probe:     &Scan{Table: "cust"},
		BuildKeys: []string{"o_cust"},
		ProbeKeys: []string{"c_id"},
		Kind:      Anti,
	})
	if anti.NumRows() != 1 || anti.MustCol("c_name").(*colstore.Strings).Value(0) != "dave" {
		t.Fatalf("anti join wrong: %d rows", anti.NumRows())
	}
	lc := mustRun(t, cat, &HashJoin{
		Build:     &Scan{Table: "orders"},
		Probe:     &Scan{Table: "cust"},
		BuildKeys: []string{"o_cust"},
		ProbeKeys: []string{"c_id"},
		Kind:      LeftCount,
		CountAs:   "n_orders",
	})
	if lc.NumRows() != 4 {
		t.Fatalf("left-count rows = %d", lc.NumRows())
	}
	counts := lc.MustCol("n_orders").(*colstore.Int64s).V
	want := []int64{2, 2, 1, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("left-count = %v, want %v", counts, want)
		}
	}
}

func TestHashJoinTwoKeyAndErrors(t *testing.T) {
	cat := testCatalog()
	// Two-key self join on (o_cust, o_status-as-key is string; use o_id+o_cust).
	out := mustRun(t, cat, &HashJoin{
		Build:     &Rename{Input: &Scan{Table: "orders", Columns: []string{"o_id", "o_cust"}}, Pairs: [][2]string{{"o_id", "b_id"}, {"o_cust", "b_cust"}}},
		Probe:     &Scan{Table: "orders"},
		BuildKeys: []string{"b_id", "b_cust"},
		ProbeKeys: []string{"o_id", "o_cust"},
		Kind:      Inner,
	})
	if out.NumRows() != 5 {
		t.Fatalf("two-key self join rows = %d, want 5", out.NumRows())
	}

	// Key list mismatch.
	if _, _, err := Run(cat, 1, &HashJoin{
		Build: &Scan{Table: "cust"}, Probe: &Scan{Table: "orders"},
		BuildKeys: []string{"c_id"}, ProbeKeys: []string{"o_cust", "o_id"},
	}); err == nil {
		t.Error("mismatched key lists should error")
	}
	// Duplicate output columns without rename.
	if _, _, err := Run(cat, 1, &HashJoin{
		Build: &Scan{Table: "orders"}, Probe: &Scan{Table: "orders"},
		BuildKeys: []string{"o_id"}, ProbeKeys: []string{"o_id"}, Kind: Inner,
	}); err == nil {
		t.Error("duplicate columns should error")
	}
	// Three keys unsupported.
	if _, _, err := Run(cat, 1, &HashJoin{
		Build: &Scan{Table: "orders"}, Probe: &Scan{Table: "orders"},
		BuildKeys: []string{"o_id", "o_cust", "o_total"}, ProbeKeys: []string{"o_id", "o_cust", "o_total"},
	}); err == nil {
		t.Error("three keys should error")
	}
	// Float key column.
	if _, _, err := Run(cat, 1, &HashJoin{
		Build: &Scan{Table: "orders"}, Probe: &Scan{Table: "cust"},
		BuildKeys: []string{"o_total"}, ProbeKeys: []string{"c_id"}, Kind: Semi,
	}); err == nil {
		t.Error("float key should error")
	}
}

func TestGroupByGrouped(t *testing.T) {
	cat := testCatalog()
	out := mustRun(t, cat, &GroupBy{
		Input: &Scan{Table: "orders"},
		Keys:  []string{"o_cust"},
		Aggs: []AggSpec{
			{Name: "total", Func: Sum, Arg: exec.Col{Name: "o_total"}},
			{Name: "n", Func: Count},
			{Name: "avg_total", Func: Avg, Arg: exec.Col{Name: "o_total"}},
			{Name: "min_total", Func: Min, Arg: exec.Col{Name: "o_total"}},
			{Name: "max_total", Func: Max, Arg: exec.Col{Name: "o_total"}},
		},
	})
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	// First-occurrence order: cust 10, 20, 30.
	cust := out.MustCol("o_cust").(*colstore.Int64s).V
	if cust[0] != 10 || cust[1] != 20 || cust[2] != 30 {
		t.Fatalf("group order = %v", cust)
	}
	sums := out.MustCol("total").(*colstore.Float64s).V
	if sums[0] != 150 || sums[1] != 200 || sums[2] != 25 {
		t.Fatalf("sums = %v", sums)
	}
	ns := out.MustCol("n").(*colstore.Int64s).V
	if ns[0] != 2 || ns[1] != 2 || ns[2] != 1 {
		t.Fatalf("counts = %v", ns)
	}
	avgs := out.MustCol("avg_total").(*colstore.Float64s).V
	if avgs[0] != 75 || avgs[2] != 25 {
		t.Fatalf("avgs = %v", avgs)
	}
	mins := out.MustCol("min_total").(*colstore.Float64s).V
	maxs := out.MustCol("max_total").(*colstore.Float64s).V
	if mins[1] != 75 || maxs[1] != 125 {
		t.Fatalf("min/max = %v %v", mins, maxs)
	}
}

func TestGroupByMultiKeyAndScalar(t *testing.T) {
	cat := testCatalog()
	out := mustRun(t, cat, &GroupBy{
		Input: &Scan{Table: "orders"},
		Keys:  []string{"o_cust", "o_status"},
		Aggs:  []AggSpec{{Name: "n", Func: Count}},
	})
	if out.NumRows() != 4 { // (10,OPEN),(10,DONE),(20,OPEN),(30,DONE)
		t.Fatalf("multi-key groups = %d", out.NumRows())
	}
	if out.MustCol("o_status").(*colstore.Strings).Value(0) != "OPEN" {
		t.Error("string key not preserved")
	}

	scalar := mustRun(t, cat, &GroupBy{
		Input: &Scan{Table: "orders"},
		Aggs: []AggSpec{
			{Name: "total", Func: Sum, Arg: exec.Col{Name: "o_total"}},
			{Name: "n", Func: Count},
			{Name: "avg", Func: Avg, Arg: exec.Col{Name: "o_total"}},
			{Name: "mn", Func: Min, Arg: exec.Col{Name: "o_total"}},
			{Name: "mx", Func: Max, Arg: exec.Col{Name: "o_total"}},
		},
	})
	if scalar.NumRows() != 1 {
		t.Fatalf("scalar agg rows = %d", scalar.NumRows())
	}
	if v := scalar.MustCol("total").(*colstore.Float64s).V[0]; v != 375 {
		t.Errorf("scalar sum = %v", v)
	}
	if v := scalar.MustCol("n").(*colstore.Int64s).V[0]; v != 5 {
		t.Errorf("scalar count = %v", v)
	}
	if v := scalar.MustCol("avg").(*colstore.Float64s).V[0]; v != 75 {
		t.Errorf("scalar avg = %v", v)
	}
	if v := scalar.MustCol("mn").(*colstore.Float64s).V[0]; v != 25 {
		t.Errorf("scalar min = %v", v)
	}
	if v := scalar.MustCol("mx").(*colstore.Float64s).V[0]; v != 125 {
		t.Errorf("scalar max = %v", v)
	}

	// Scalar aggregates over empty input still return one row.
	empty := mustRun(t, cat, &GroupBy{
		Input: &Scan{Table: "orders", Pred: exec.CmpF{Column: "o_total", Op: exec.Gt, V: 1e9}},
		Aggs: []AggSpec{
			{Name: "n", Func: Count},
			{Name: "s", Func: Sum, Arg: exec.Col{Name: "o_total"}},
			{Name: "a", Func: Avg, Arg: exec.Col{Name: "o_total"}},
			{Name: "mn", Func: Min, Arg: exec.Col{Name: "o_total"}},
		},
	})
	if empty.NumRows() != 1 || empty.MustCol("n").(*colstore.Int64s).V[0] != 0 {
		t.Error("empty scalar agg wrong")
	}
	if empty.MustCol("s").(*colstore.Float64s).V[0] != 0 {
		t.Error("empty sum not 0")
	}

	// Grouped agg over empty input returns zero rows.
	emptyG := mustRun(t, cat, &GroupBy{
		Input: &Scan{Table: "orders", Pred: exec.CmpF{Column: "o_total", Op: exec.Gt, V: 1e9}},
		Keys:  []string{"o_cust"},
		Aggs:  []AggSpec{{Name: "n", Func: Count}},
	})
	if emptyG.NumRows() != 0 {
		t.Errorf("empty grouped agg rows = %d", emptyG.NumRows())
	}

	// Error paths.
	if _, _, err := Run(cat, 1, &GroupBy{
		Input: &Scan{Table: "orders"}, Keys: []string{"zzz"},
		Aggs: []AggSpec{{Name: "n", Func: Count}},
	}); err == nil {
		t.Error("missing key should error")
	}
	if _, _, err := Run(cat, 1, &GroupBy{
		Input: &Scan{Table: "orders"}, Keys: []string{"o_cust"},
		Aggs: []AggSpec{{Name: "s", Func: Sum}},
	}); err == nil {
		t.Error("sum without arg should error")
	}
	if _, _, err := Run(cat, 1, &GroupBy{
		Input: &Scan{Table: "orders"}, Keys: []string{"o_total"},
		Aggs: []AggSpec{{Name: "n", Func: Count}},
	}); err == nil {
		t.Error("float group key should error")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	cat := testCatalog()
	out := mustRun(t, cat, &OrderBy{
		Input: &Scan{Table: "orders"},
		Keys:  []exec.SortKey{{Column: "o_total", Desc: true}},
	})
	v := out.MustCol("o_total").(*colstore.Float64s).V
	if v[0] != 125 || v[4] != 25 {
		t.Fatalf("order by desc = %v", v)
	}
	top := mustRun(t, cat, &OrderBy{
		Input: &Scan{Table: "orders"},
		Keys:  []exec.SortKey{{Column: "o_total", Desc: true}},
		N:     2,
	})
	if top.NumRows() != 2 || top.MustCol("o_total").(*colstore.Float64s).V[1] != 100 {
		t.Fatal("top-n wrong")
	}
	lim := mustRun(t, cat, &Limit{Input: &Scan{Table: "orders"}, N: 3})
	if lim.NumRows() != 3 {
		t.Fatalf("limit rows = %d", lim.NumRows())
	}
	lim = mustRun(t, cat, &Limit{Input: &Scan{Table: "orders"}, N: 100})
	if lim.NumRows() != 5 {
		t.Fatalf("limit beyond size rows = %d", lim.NumRows())
	}
}

func TestExplainCoversAllNodes(t *testing.T) {
	n := &OrderBy{
		Input: &Limit{
			Input: &GroupBy{
				Input: &HashJoin{
					Build:     &Rename{Input: &Scan{Table: "cust"}, Pairs: [][2]string{{"c_id", "id"}}},
					Probe:     &Project{Input: &Filter{Input: &Scan{Table: "orders", Columns: []string{"o_id"}, Pred: exec.TruePred{}}, Pred: exec.TruePred{}}, Cols: []NamedExpr{{Name: "x", Expr: exec.Col{Name: "o_id"}}}},
					BuildKeys: []string{"id"},
					ProbeKeys: []string{"x"},
					Kind:      Semi,
				},
				Keys: []string{"x"},
				Aggs: []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Arg: exec.Col{Name: "x"}}},
			},
			N: 10,
		},
		Keys: []exec.SortKey{{Column: "n", Desc: true}},
		N:    5,
	}
	s := Explain(n)
	for _, want := range []string{"order by", "limit", "group by", "hash join (semi)", "rename", "project", "filter", "scan cust", "scan orders"} {
		if !strings.Contains(s, want) {
			t.Errorf("explain missing %q in:\n%s", want, s)
		}
	}
}

func TestParallelSelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := DefaultMinParallelRows * 3
	b := colstore.NewTableBuilder("big", colstore.Schema{{Name: "v", Type: colstore.Int64}})
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.Int(0, rng.Int63n(1000))
		b.EndRow()
	}
	cat := memCatalog{"big": b.Build()}
	pred := exec.CmpI{Column: "v", Op: exec.Lt, V: 500}

	seq, _, err := Run(cat, 1, &Scan{Table: "big", Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := Run(cat, 8, &Scan{Table: "big", Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumRows() != par.NumRows() {
		t.Fatalf("parallel rows %d != sequential %d", par.NumRows(), seq.NumRows())
	}
	sv := seq.MustCol("v").(*colstore.Int64s).V
	pv := par.MustCol("v").(*colstore.Int64s).V
	for i := range sv {
		if sv[i] != pv[i] {
			t.Fatalf("row %d differs: %d vs %d", i, sv[i], pv[i])
		}
	}
	// Errors propagate from workers.
	if _, _, err := Run(cat, 8, &Scan{Table: "big", Pred: exec.CmpI{Column: "zzz", Op: exec.Lt, V: 1}}); err == nil {
		t.Error("parallel sel should propagate errors")
	}
}

func TestCountersCharged(t *testing.T) {
	cat := testCatalog()
	_, ctr, err := Run(cat, 1, &GroupBy{
		Input: &Scan{Table: "orders", Pred: exec.CmpF{Column: "o_total", Op: exec.Gt, V: 0}},
		Keys:  []string{"o_cust"},
		Aggs:  []AggSpec{{Name: "s", Func: Sum, Arg: exec.Col{Name: "o_total"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctr.TuplesScanned == 0 || ctr.SeqBytes == 0 || ctr.AggUpdates == 0 ||
		ctr.TuplesMaterialized == 0 || ctr.PeakLiveBytes == 0 {
		t.Errorf("counters not charged: %+v", ctr)
	}
}

func TestJoinAndGroupStrings(t *testing.T) {
	for _, k := range []JoinKind{Inner, Semi, Anti, LeftCount} {
		if k.String() == "" {
			t.Error("empty JoinKind string")
		}
	}
	for _, f := range []AggFunc{Sum, Count, Avg, Min, Max} {
		if f.String() == "" {
			t.Error("empty AggFunc string")
		}
	}
}
