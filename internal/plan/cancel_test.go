package plan

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
	"wimpi/internal/obs"
)

// cancelCatalog builds a join workload large enough that every pipeline
// stage — scan, join build, join probe, group-by, sort — does real
// morsel-parallel work.
func cancelCatalog() memCatalog {
	const nOrders, nCust = 120_000, 4_000
	ob := colstore.NewTableBuilder("orders", colstore.Schema{
		{Name: "o_cust", Type: colstore.Int64},
		{Name: "o_total", Type: colstore.Float64},
	})
	for i := 0; i < nOrders; i++ {
		ob.Int(0, int64(i%nCust))
		ob.Float(1, float64(i%997))
		ob.EndRow()
	}
	cb := colstore.NewTableBuilder("cust", colstore.Schema{
		{Name: "c_id", Type: colstore.Int64},
		{Name: "c_region", Type: colstore.Int64},
	})
	for i := 0; i < nCust; i++ {
		cb.Int(0, int64(i))
		cb.Int(1, int64(i%13))
		cb.EndRow()
	}
	return memCatalog{"orders": ob.Build(), "cust": cb.Build()}
}

// cancelPlan joins, aggregates, and sorts — exercising every stage the
// cancellation test targets.
func cancelPlan() Node {
	return &OrderBy{
		Input: &GroupBy{
			Input: &HashJoin{
				Build:     &Scan{Table: "cust"},
				BuildKeys: []string{"c_id"},
				Probe:     &Scan{Table: "orders"},
				ProbeKeys: []string{"o_cust"},
			},
			Keys: []string{"c_region"},
			Aggs: []AggSpec{{Name: "total", Func: Sum, Arg: exec.Col{Name: "o_total"}}},
		},
		Keys: []exec.SortKey{{Column: "total", Desc: true}},
	}
}

// TestCancelAtEachStage cancels a query the instant each pipeline stage
// begins, and requires: the cancellation cause (not a mangled result)
// comes back, no goroutines leak, and an immediately-following clean
// run of the same shared plan tree is byte-identical to the baseline —
// a cancelled run must leave no partial state behind in the plan.
func TestCancelAtEachStage(t *testing.T) {
	cat := cancelCatalog()
	p := cancelPlan()

	baselineRes, err := RunTracedContext(&Context{Cat: cat, Workers: 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	baselineRes.Root.Walk(func(sp *obs.Span, _ int) { seen[sp.Op] = true })

	stages := []string{"scan", "join-build", "join-probe", "group-by", "sort"}
	for _, stage := range stages {
		if !seen[stage] {
			t.Fatalf("baseline trace never opened a %q span; stages seen: %v", stage, seen)
		}
	}

	for _, stage := range stages {
		t.Run(stage, func(t *testing.T) {
			before := runtime.NumGoroutine()
			stdCtx, cancel := context.WithCancel(context.Background())
			defer cancel()
			hook := &obs.Tracer{Hook: func(op, label string) {
				if op == stage {
					cancel()
				}
			}}
			pctx := &Context{Cat: cat, Workers: 4, Ctx: stdCtx, Trace: hook}
			res, err := RunTracedContext(pctx, p)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancel at %s: err = %v, want context.Canceled", stage, err)
			}
			if res != nil {
				t.Fatalf("cancel at %s: got a result alongside the error", stage)
			}
			waitGoroutines(t, before)

			// The shared plan tree must be reusable after a cancelled run.
			clean, err := RunTracedContext(&Context{Cat: cat, Workers: 4}, p)
			if err != nil {
				t.Fatalf("clean run after cancel at %s: %v", stage, err)
			}
			if ok, why := colstore.TablesIdentical(baselineRes.Table, clean.Table); !ok {
				t.Fatalf("result corrupted after cancel at %s: %s", stage, why)
			}
		})
	}
}

// TestMemLimitCancelsQuery: a query whose live intermediates exceed the
// budget fails with *MemLimitError; an unlimited run still succeeds.
func TestMemLimitCancelsQuery(t *testing.T) {
	cat := cancelCatalog()
	p := cancelPlan()
	_, _, err := RunContext(&Context{Cat: cat, Workers: 2, MemLimitBytes: 1 << 10}, p)
	var mem *MemLimitError
	if !errors.As(err, &mem) {
		t.Fatalf("err = %v, want *MemLimitError", err)
	}
	if mem.Observed <= mem.Limit {
		t.Fatalf("MemLimitError observed %d <= limit %d", mem.Observed, mem.Limit)
	}
	if _, _, err := RunContext(&Context{Cat: cat, Workers: 2}, p); err != nil {
		t.Fatalf("unlimited run: %v", err)
	}
}

// TestCancelBeforeRun: a context cancelled before execution returns its
// cause without running anything.
func TestCancelBeforeRun(t *testing.T) {
	cat := cancelCatalog()
	stdCtx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := RunContext(&Context{Cat: cat, Workers: 4, Ctx: stdCtx}, cancelPlan())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
