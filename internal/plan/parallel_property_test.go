package plan

// Property tests for parallel plan execution. Two claims:
//
//  1. Determinism: with a fixed morsel configuration, results are
//     byte-identical at every worker count (floats compared by bit
//     pattern) — morsel decomposition depends only on input size.
//  2. Correctness: the morsel path agrees with the sequential path; for
//     floating-point aggregates only the summation order may differ, so
//     those are compared within a small relative tolerance.

import (
	"math"
	"math/rand"
	"testing"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
)

func runCtx(cat Catalog, workers, minPar, morsel int, n Node) (*colstore.Table, error) {
	ctx := &Context{
		Cat: cat, Ctr: &exec.Counters{},
		Workers: workers, MinParallelRows: minPar, MorselRows: morsel,
	}
	return n.Execute(ctx)
}

func compareTables(t *testing.T, label string, want, got *colstore.Table, exactFloats bool) {
	t.Helper()
	if want.NumRows() != got.NumRows() || want.NumCols() != got.NumCols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label,
			got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for c := 0; c < want.NumCols(); c++ {
		wc, gc := want.Col(c), got.Col(c)
		name := want.Schema[c].Name
		switch wcol := wc.(type) {
		case *colstore.Float64s:
			gcol := gc.(*colstore.Float64s)
			for i := range wcol.V {
				w, g := wcol.V[i], gcol.V[i]
				if exactFloats {
					if math.Float64bits(w) != math.Float64bits(g) {
						t.Fatalf("%s: %s row %d: %v vs %v (bits differ)", label, name, i, g, w)
					}
				} else if math.Abs(w-g) > 1e-9*math.Max(1, math.Abs(w)) {
					t.Fatalf("%s: %s row %d: %v vs %v", label, name, i, g, w)
				}
			}
		case *colstore.Int64s:
			gcol := gc.(*colstore.Int64s)
			for i := range wcol.V {
				if wcol.V[i] != gcol.V[i] {
					t.Fatalf("%s: %s row %d: %d vs %d", label, name, i, gcol.V[i], wcol.V[i])
				}
			}
		case *colstore.Strings:
			gcol := gc.(*colstore.Strings)
			for i := range wcol.Codes {
				if wcol.Value(i) != gcol.Value(i) {
					t.Fatalf("%s: %s row %d: %q vs %q", label, name, i, gcol.Value(i), wcol.Value(i))
				}
			}
		case *colstore.Dates:
			gcol := gc.(*colstore.Dates)
			for i := range wcol.V {
				if wcol.V[i] != gcol.V[i] {
					t.Fatalf("%s: %s row %d differs", label, name, i)
				}
			}
		case *colstore.Bools:
			gcol := gc.(*colstore.Bools)
			for i := range wcol.V {
				if wcol.V[i] != gcol.V[i] {
					t.Fatalf("%s: %s row %d differs", label, name, i)
				}
			}
		default:
			t.Fatalf("%s: unhandled column type %T", label, wc)
		}
	}
}

// parallelTestPlans returns plans exercising every parallel operator:
// selection, join (all kinds), group-by with every aggregate, computed
// projections, and sorting.
func parallelTestPlans() map[string]Node {
	join := func(kind JoinKind) Node {
		return &HashJoin{
			Build:     &Scan{Table: "l"},
			Probe:     &Scan{Table: "r"},
			BuildKeys: []string{"l_key"},
			ProbeKeys: []string{"r_key"},
			Kind:      kind,
			CountAs:   "matches",
		}
	}
	return map[string]Node{
		"filter-sort": &OrderBy{
			Input: &Scan{Table: "r", Pred: exec.CmpI{Column: "r_key", Op: exec.Lt, V: 12}},
			Keys:  []exec.SortKey{{Column: "r_val", Desc: true}, {Column: "r_key"}},
		},
		"inner-join-sort": &OrderBy{
			Input: join(Inner),
			Keys:  []exec.SortKey{{Column: "l_key"}, {Column: "r_val"}, {Column: "l_val"}},
		},
		"semi-join": &OrderBy{Input: join(Semi), Keys: []exec.SortKey{{Column: "r_key"}, {Column: "r_val"}}},
		"anti-join": &OrderBy{Input: join(Anti), Keys: []exec.SortKey{{Column: "r_key"}, {Column: "r_val"}}},
		"left-count": &OrderBy{
			Input: join(LeftCount),
			Keys:  []exec.SortKey{{Column: "r_key"}, {Column: "r_val"}, {Column: "matches"}},
		},
		"group-aggs": &OrderBy{
			Input: &GroupBy{
				Input: &Scan{Table: "r"},
				Keys:  []string{"r_key", "r_tag"},
				Aggs: []AggSpec{
					{Name: "n", Func: Count},
					{Name: "s", Func: Sum, Arg: exec.Col{Name: "r_val"}},
					{Name: "a", Func: Avg, Arg: exec.Col{Name: "r_val"}},
					{Name: "lo", Func: Min, Arg: exec.Col{Name: "r_val"}},
					{Name: "hi", Func: Max, Arg: exec.Col{Name: "r_val"}},
				},
			},
			Keys: []exec.SortKey{{Column: "r_key"}, {Column: "r_tag"}},
		},
		"project-group": &GroupBy{
			Input: &Project{
				Input: &Scan{Table: "r"},
				Cols: []NamedExpr{
					{Name: "k", Expr: exec.Col{Name: "r_key"}},
					{Name: "v2", Expr: exec.Mul(exec.Col{Name: "r_val"}, exec.ConstF{V: 1.5})},
				},
			},
			Keys: []string{"k"},
			Aggs: []AggSpec{{Name: "s", Func: Sum, Arg: exec.Col{Name: "v2"}}},
		},
		"scalar-aggs": &GroupBy{
			Input: &Scan{Table: "r"},
			Aggs: []AggSpec{
				{Name: "n", Func: Count},
				{Name: "s", Func: Sum, Arg: exec.Col{Name: "r_val"}},
				{Name: "lo", Func: Min, Arg: exec.Col{Name: "r_val"}},
			},
		},
	}
}

func TestParallelPlansDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cat := memCatalog{
		"l": randTable(rng, "l", 900, 25),
		"r": randTable(rng, "r", 2400, 25),
	}
	const minPar, morsel = 1, 37
	for name, n := range parallelTestPlans() {
		base, err := runCtx(cat, 1, minPar, morsel, n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, w := range []int{2, 4, 8} {
			got, err := runCtx(cat, w, minPar, morsel, n)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			compareTables(t, name, base, got, true)
		}
	}
}

func TestParallelPlansMatchSequentialOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		cat := memCatalog{
			"l": randTable(rng, "l", 200+rng.Intn(1200), 20),
			"r": randTable(rng, "r", 200+rng.Intn(3000), 20),
		}
		for name, n := range parallelTestPlans() {
			seq, err := runCtx(cat, 1, 1<<30, 0, n)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			par, err := runCtx(cat, 8, 1, 41, n)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			// Join/sort/filter outputs are exact; aggregates may differ
			// in float summation order only.
			compareTables(t, name, seq, par, false)
		}
	}
}
