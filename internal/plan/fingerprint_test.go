package plan

import (
	"testing"

	"wimpi/internal/exec"
)

// TestFingerprint pins the cache-key contract: identical plans share a
// fingerprint, and any semantic difference — table, projection, or a
// single predicate constant — changes it.
func TestFingerprint(t *testing.T) {
	base := func(v float64) Node {
		return &Scan{
			Table:   "orders",
			Columns: []string{"o_id", "o_total"},
			Pred:    exec.CmpF{Column: "o_total", Op: exec.Ge, V: v},
		}
	}
	a, b := Fingerprint(base(75)), Fingerprint(base(75))
	if a != b {
		t.Fatalf("identical plans fingerprint differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length = %d, want 64 hex chars", len(a))
	}
	distinct := map[string]string{
		"const":   Fingerprint(base(76)),
		"table":   Fingerprint(&Scan{Table: "lineitem"}),
		"columns": Fingerprint(&Scan{Table: "orders", Columns: []string{"o_id"}}),
		"limit":   Fingerprint(&Limit{Input: base(75), N: 10}),
	}
	for what, fp := range distinct {
		if fp == a {
			t.Errorf("%s change did not change the fingerprint", what)
		}
	}
}
