package plan

import (
	"strings"
	"testing"

	"wimpi/internal/exec"
)

func TestAnalyzeMatchesRunAndAttributesWork(t *testing.T) {
	cat := testCatalog()
	node := &GroupBy{
		Input: &HashJoin{
			Build:     &Scan{Table: "cust"},
			Probe:     &Scan{Table: "orders", Pred: exec.CmpF{Column: "o_total", Op: exec.Gt, V: 30}},
			BuildKeys: []string{"c_id"},
			ProbeKeys: []string{"o_cust"},
			Kind:      Inner,
		},
		Keys: []string{"c_name"},
		Aggs: []AggSpec{{Name: "total", Func: Sum, Arg: exec.Col{Name: "o_total"}}},
	}
	plain, plainCtr, err := Run(cat, 1, node)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(cat, 1, node)
	if err != nil {
		t.Fatal(err)
	}
	// Same result and (nearly) same totals.
	if an.Table.NumRows() != plain.NumRows() {
		t.Fatalf("analyzed rows %d != plain %d", an.Table.NumRows(), plain.NumRows())
	}
	if an.Counters.TuplesScanned != plainCtr.TuplesScanned ||
		an.Counters.SeqBytes != plainCtr.SeqBytes {
		t.Errorf("analyzed counters diverge: %+v vs %+v", an.Counters, plainCtr)
	}
	// One stats row per span: groupby, join, 2 scans, the join's
	// build and probe phases, and 3 gathers (filtered scan, and the
	// inner join's two output gathers).
	if len(an.Stats) != 9 {
		t.Fatalf("stats rows = %d, want 9:\n%s", len(an.Stats), an.Render())
	}
	for _, op := range []string{"build [c_id]", "probe [o_cust]"} {
		found := false
		for _, st := range an.Stats {
			if st.Label == op {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %q phase span:\n%s", op, an.Render())
		}
	}
	// Pre-order: the root is first and has depth 0.
	if an.Stats[0].Depth != 0 || !strings.Contains(an.Stats[0].Label, "group by") {
		t.Errorf("root stats wrong: %+v", an.Stats[0])
	}
	// Exclusive counters sum to (approximately) the totals.
	var sum int64
	for _, st := range an.Stats {
		if st.Rows < 0 || st.HostDuration < 0 {
			t.Errorf("negative exclusive measurement: %+v", st)
		}
		sum += st.Counters.TuplesScanned
	}
	if sum != an.Counters.TuplesScanned {
		t.Errorf("exclusive TuplesScanned sum %d != total %d", sum, an.Counters.TuplesScanned)
	}
	// Render produces one line per operator plus a header.
	r := an.Render()
	if got := strings.Count(r, "\n"); got != len(an.Stats)+1 {
		t.Errorf("render has %d lines, want %d:\n%s", got, len(an.Stats)+1, r)
	}
	if !strings.Contains(r, "scan orders") {
		t.Errorf("render missing scan label:\n%s", r)
	}
}

func TestAnalyzeErrorPropagates(t *testing.T) {
	cat := testCatalog()
	if _, err := Analyze(cat, 1, &Scan{Table: "missing"}); err == nil {
		t.Error("analyze of bad plan should error")
	}
}
