package plan

import (
	"wimpi/internal/colstore"
	"wimpi/internal/exec"
)

// parallelSel evaluates pred over t through the shared morsel scheduler
// (exec.RunMorsels). Each morsel evaluates the predicate on a zero-copy
// slice with private counters; match indexes are offset back to
// table-global row numbers and concatenated in morsel order, so the
// output is identical to a sequential evaluation at any worker count.
func parallelSel(ctx *Context, t *colstore.Table, pred exec.Pred) ([]int32, error) {
	w := ctx.workers()
	n := t.NumRows()
	if w == 1 || n < ctx.parallelMinRows() {
		return pred.Sel(t, nil, ctx.Ctr)
	}
	nm := exec.NumMorsels(n, ctx.morselRows())
	sels := make([][]int32, nm)
	err := exec.RunMorsels(w, n, ctx.morselRows(), ctx.Ctr, func(m, lo, hi int, ctr *exec.Counters) error {
		sub := t.Slice(lo, hi)
		sel, err := pred.Sel(sub, nil, ctr)
		if err != nil {
			return err
		}
		for j := range sel {
			sel[j] += int32(lo)
		}
		sels[m] = sel
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, s := range sels {
		total += len(s)
	}
	out := make([]int32, 0, total)
	for _, s := range sels {
		out = append(out, s...)
	}
	ctx.Ctr.MergeBytes += int64(total) * 4
	return out, nil
}

// evalExprParallel evaluates e over in, splitting computed expressions
// into morsels. Expression kernels are elementwise, so evaluating on
// zero-copy slices and concatenating the chunks in morsel order is
// bit-identical to a whole-table evaluation. Plain column references
// stay zero-copy, and chunk types the stitcher does not understand fall
// back to a sequential evaluation.
func evalExprParallel(ctx *Context, in *colstore.Table, e exec.Expr) (colstore.Column, error) {
	n := in.NumRows()
	w := ctx.workers()
	if w == 1 || n < ctx.parallelMinRows() {
		return e.Eval(in, ctx.Ctr)
	}
	if _, ok := e.(exec.Col); ok {
		return e.Eval(in, ctx.Ctr)
	}
	nm := exec.NumMorsels(n, ctx.morselRows())
	chunks := make([]colstore.Column, nm)
	err := exec.RunMorsels(w, n, ctx.morselRows(), ctx.Ctr, func(m, lo, hi int, ctr *exec.Counters) error {
		c, err := e.Eval(in.Slice(lo, hi), ctr)
		if err != nil {
			return err
		}
		chunks[m] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	out, ok := concatChunks(chunks, n)
	if !ok {
		return e.Eval(in, ctx.Ctr)
	}
	ctx.Ctr.MergeBytes += out.SizeBytes()
	return out, nil
}

// concatChunks stitches per-morsel expression results into one column.
// It handles the fixed-width types expressions produce; anything else
// reports false so the caller can fall back.
func concatChunks(chunks []colstore.Column, n int) (colstore.Column, bool) {
	switch chunks[0].(type) {
	case *colstore.Float64s:
		out := make([]float64, 0, n)
		for _, c := range chunks {
			f, ok := c.(*colstore.Float64s)
			if !ok {
				return nil, false
			}
			out = append(out, f.V...)
		}
		return &colstore.Float64s{V: out}, true
	case *colstore.Int64s:
		out := make([]int64, 0, n)
		for _, c := range chunks {
			f, ok := c.(*colstore.Int64s)
			if !ok {
				return nil, false
			}
			out = append(out, f.V...)
		}
		return &colstore.Int64s{V: out}, true
	case *colstore.Dates:
		out := make([]int32, 0, n)
		for _, c := range chunks {
			f, ok := c.(*colstore.Dates)
			if !ok {
				return nil, false
			}
			out = append(out, f.V...)
		}
		return &colstore.Dates{V: out}, true
	case *colstore.Bools:
		out := make([]bool, 0, n)
		for _, c := range chunks {
			f, ok := c.(*colstore.Bools)
			if !ok {
				return nil, false
			}
			out = append(out, f.V...)
		}
		return &colstore.Bools{V: out}, true
	default:
		return nil, false
	}
}
