package plan

import (
	"sync"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
)

// parallelMinRows is the smallest input for which selection is split
// across workers; below this the coordination overhead dominates.
const parallelMinRows = 1 << 15

// parallelSel evaluates pred over t, splitting the row range across the
// context's workers (morsel-style). Each worker evaluates the predicate
// on a zero-copy slice with private counters; results are offset back to
// table-global row indexes and concatenated in order, so the output is
// identical to a sequential evaluation.
func parallelSel(ctx *Context, t *colstore.Table, pred exec.Pred) ([]int32, error) {
	w := ctx.workers()
	n := t.NumRows()
	if w == 1 || n < parallelMinRows {
		return pred.Sel(t, nil, ctx.Ctr)
	}
	type part struct {
		sel []int32
		ctr exec.Counters
		err error
	}
	parts := make([]part, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := n * i / w
		hi := n * (i + 1) / w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			p := &parts[i]
			sub := t.Slice(lo, hi)
			sel, err := pred.Sel(sub, nil, &p.ctr)
			if err != nil {
				p.err = err
				return
			}
			for j := range sel {
				sel[j] += int32(lo)
			}
			p.sel = sel
		}(i, lo, hi)
	}
	wg.Wait()
	total := 0
	for i := range parts {
		if parts[i].err != nil {
			return nil, parts[i].err
		}
		total += len(parts[i].sel)
		ctx.Ctr.Add(parts[i].ctr)
	}
	out := make([]int32, 0, total)
	for i := range parts {
		out = append(out, parts[i].sel...)
	}
	return out, nil
}
