package plan

// Fused pipeline compilation. Compile walks a plan tree, breaks it at
// pipeline breakers (join builds, group-by, sort), and rewrites each
// pipeline — a select→project→probe chain feeding a sink — into a Fused
// node that executes the whole chain over selection vectors
// (exec/fused.Vectors) against the driver table, materializing columns
// exactly once, at the sink. Results are byte-identical to the vector
// engine at every worker count: filters, probe kernels, and the
// aggregation/sort sinks are the same deterministic kernels, fed the
// same values in the same order; only the materialization between them
// is gone.

import (
	"fmt"
	"strings"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
	"wimpi/internal/exec/fused"
	"wimpi/internal/hardware"
)

// ExecMode selects the engine's execution style.
type ExecMode string

// The execution modes.
const (
	// ExecVector is classic operator-at-a-time execution: every operator
	// fully materializes its result (the engine's original behavior, and
	// the default).
	ExecVector ExecMode = "vector"
	// ExecFused compiles every supported pipeline into a fused kernel.
	ExecFused ExecMode = "fused"
	// ExecAuto lets the hardware cost model choose per pipeline, pricing
	// the eliminated materializations against the fused path's extra
	// selective accesses.
	ExecAuto ExecMode = "auto"
)

// ParseExecMode parses a -exec flag value; the empty string selects
// vector execution.
func ParseExecMode(s string) (ExecMode, error) {
	switch ExecMode(s) {
	case "", ExecVector:
		return ExecVector, nil
	case ExecFused:
		return ExecFused, nil
	case ExecAuto:
		return ExecAuto, nil
	default:
		return "", fmt.Errorf("plan: unknown exec mode %q (want vector, fused, or auto)", s)
	}
}

// Compile rewrites a plan for the context's execution mode. Vector mode
// (and the zero value) returns the plan unchanged; fused and auto modes
// rewrite each supported pipeline into a Fused node. The input tree is
// never mutated — rewritten paths are copies — so shared plan values
// stay reusable under any mode.
func Compile(ctx *Context, n Node) Node {
	if ctx.Exec == "" || ctx.Exec == ExecVector {
		return n
	}
	return compileNode(ctx, n)
}

// compileNode recursively rewrites pipelines. Unknown node types (for
// example query-defined function nodes) are returned unchanged — their
// internals execute exactly as before.
func compileNode(ctx *Context, n Node) Node {
	switch v := n.(type) {
	case *GroupBy:
		if f, ok := tryFuse(ctx, v.Input, v, nil); ok {
			return f
		}
		c := *v
		c.Input = compileNode(ctx, v.Input)
		return &c
	case *OrderBy:
		if f, ok := tryFuse(ctx, v.Input, nil, v); ok {
			return f
		}
		c := *v
		c.Input = compileNode(ctx, v.Input)
		return &c
	case *HashJoin:
		if f, ok := tryFuse(ctx, n, nil, nil); ok {
			return f
		}
		c := *v
		c.Build = compileNode(ctx, v.Build)
		c.Probe = compileNode(ctx, v.Probe)
		return &c
	case *Filter:
		if f, ok := tryFuse(ctx, n, nil, nil); ok {
			return f
		}
		c := *v
		c.Input = compileNode(ctx, v.Input)
		return &c
	case *Project:
		if f, ok := tryFuse(ctx, n, nil, nil); ok {
			return f
		}
		c := *v
		c.Input = compileNode(ctx, v.Input)
		return &c
	case *Rename:
		if f, ok := tryFuse(ctx, n, nil, nil); ok {
			return f
		}
		c := *v
		c.Input = compileNode(ctx, v.Input)
		return &c
	case *Limit:
		c := *v
		c.Input = compileNode(ctx, v.Input)
		return &c
	case *Scan:
		return v
	case *Fused, *spanNode:
		return n // already compiled or instrumented
	default:
		return n
	}
}

// fusedStage is one compiled pipeline step between the driver and the
// sink.
type fusedStage interface{ stageName() string }

type filterStage struct{ pred exec.Pred }

func (filterStage) stageName() string { return "filter" }

type projectStage struct{ cols []NamedExpr }

func (projectStage) stageName() string { return "project" }

type renameStage struct{ pairs [][2]string }

func (renameStage) stageName() string { return "rename" }

// probeStage is a hash-join probe whose build side is a pipeline breaker
// executed as a regular (recursively compiled) subplan.
type probeStage struct {
	build                Node
	buildKeys, probeKeys []string
	kind                 JoinKind
	countAs              string
}

func (probeStage) stageName() string { return "probe" }

// Fused executes one compiled pipeline: a driver (base-table scan or any
// generic subplan), a chain of filter/project/rename/probe stages
// carried on selection vectors, and a sink (group-by, sort, or plain
// materialization). When its compile-time decision chose vector
// execution (auto mode), it delegates to the original operator chain —
// the decision and its reason stay visible in EXPLAIN either way.
type Fused struct {
	scan   *Scan // base-table driver (nil when input drives the pipeline)
	input  Node  // generic driver (nil when scan is set)
	stages []fusedStage
	group  *GroupBy // group-by sink (aggregation over the survivors)
	order  *OrderBy // sort sink
	// fallback is the original operator chain (with inner pipelines
	// compiled); it renders EXPLAIN and executes when useFused is false.
	fallback Node
	useFused bool
	why      string
}

// Mode reports the decided execution mode for this pipeline.
func (f *Fused) Mode() ExecMode {
	if f.useFused {
		return ExecFused
	}
	return ExecVector
}

// Why reports the human-readable reason for the mode decision.
func (f *Fused) Why() string { return f.why }

// Explain implements Node. The first line carries the pipeline shape,
// the decided mode, and the reason — it doubles as the EXPLAIN ANALYZE
// span label, satisfying "which mode won and why".
func (f *Fused) Explain(depth int) string {
	return fmt.Sprintf("%sfused pipeline %s [%s: %s]\n%s",
		pad(depth), f.shape(), f.Mode(), f.why, f.fallback.Explain(depth+1))
}

// tryFuse attempts to compile the chain rooted at top (the sink's input,
// or the whole chain for a plain sink) into a Fused node. It reports
// false when the chain offers nothing to fuse, leaving the caller to
// recurse normally.
func tryFuse(ctx *Context, top Node, group *GroupBy, order *OrderBy) (Node, bool) {
	scan, input, stages, ok := extractChain(ctx, top)
	if !ok {
		return nil, false
	}
	// Fusing pays off only when the chain would otherwise materialize an
	// intermediate: a filtering scan, or at least one chain stage.
	if len(stages) == 0 && (scan == nil || scan.Pred == nil) {
		return nil, false
	}
	if group != nil {
		// Aggregate arguments must be analyzable so the sink can
		// materialize exactly the referenced columns.
		for _, spec := range group.Aggs {
			if spec.Arg != nil {
				if _, ok := exprCols(spec.Arg); !ok {
					return nil, false
				}
			}
		}
	}
	f := &Fused{scan: scan, input: input, stages: stages, group: group, order: order}
	f.fallback = rebuildChain(scan, input, stages, group, order)
	f.useFused, f.why = decideMode(ctx, f)
	return f, true
}

// extractChain walks down from the sink input, collecting fusable stages
// until it reaches a base-table scan (the ideal driver) or a node it
// cannot fuse through (which becomes a generic, recursively compiled
// driver). Stages come back in execution order (driver first).
func extractChain(ctx *Context, n Node) (scan *Scan, input Node, stages []fusedStage, ok bool) {
	var rev []fusedStage
	cur := n
	for {
		//lint:allow exhaustive -- the default is the fusion frontier: any other node becomes the generic, recursively compiled driver
		switch v := cur.(type) {
		case *Scan:
			scan = v
			return scan, nil, reverseStages(rev), true
		case *Filter:
			if _, ok := predCols(v.Pred); !ok {
				c := *v
				c.Input = compileNode(ctx, v.Input)
				return nil, &c, reverseStages(rev), true
			}
			rev = append(rev, filterStage{pred: v.Pred})
			cur = v.Input
		case *Project:
			supported := true
			for _, ne := range v.Cols {
				if _, ok := exprCols(ne.Expr); !ok {
					supported = false
					break
				}
			}
			if !supported {
				c := *v
				c.Input = compileNode(ctx, v.Input)
				return nil, &c, reverseStages(rev), true
			}
			rev = append(rev, projectStage{cols: v.Cols})
			cur = v.Input
		case *Rename:
			rev = append(rev, renameStage{pairs: v.Pairs})
			cur = v.Input
		case *HashJoin:
			if len(v.BuildKeys) == 0 || len(v.BuildKeys) > 2 || len(v.BuildKeys) != len(v.ProbeKeys) {
				c := *v
				c.Build = compileNode(ctx, v.Build)
				c.Probe = compileNode(ctx, v.Probe)
				return nil, &c, reverseStages(rev), true
			}
			rev = append(rev, probeStage{
				build:     compileNode(ctx, v.Build),
				buildKeys: v.BuildKeys,
				probeKeys: v.ProbeKeys,
				kind:      v.Kind,
				countAs:   v.CountAs,
			})
			cur = v.Probe
		default:
			// Unknown node (function node, limit, nested sink): let it
			// drive the pipeline as a regular subplan.
			input = compileNode(ctx, cur)
			return nil, input, reverseStages(rev), true
		}
	}
}

func reverseStages(rev []fusedStage) []fusedStage {
	out := make([]fusedStage, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

// rebuildChain reconstructs the original operator chain (driver, stages,
// sink) with compiled build subtrees, for EXPLAIN and for the vector
// fallback of auto-mode decisions.
func rebuildChain(scan *Scan, input Node, stages []fusedStage, group *GroupBy, order *OrderBy) Node {
	var n Node
	if scan != nil {
		n = scan
	} else {
		n = input
	}
	for _, st := range stages {
		switch s := st.(type) {
		case filterStage:
			n = &Filter{Input: n, Pred: s.pred}
		case projectStage:
			n = &Project{Input: n, Cols: s.cols}
		case renameStage:
			n = &Rename{Input: n, Pairs: s.pairs}
		case probeStage:
			n = &HashJoin{Build: s.build, Probe: n, BuildKeys: s.buildKeys, ProbeKeys: s.probeKeys, Kind: s.kind, CountAs: s.countAs}
		}
	}
	switch {
	case group != nil:
		g := *group
		g.Input = n
		return &g
	case order != nil:
		o := *order
		o.Input = n
		return &o
	default:
		return n
	}
}

// Execute implements Node. The fused-pipeline span itself comes from
// the instrumentation wrapper (labeled by Explain's first line); the
// pipeline opens child spans for its phases (join-build, fused-probe,
// gather).
func (f *Fused) Execute(ctx *Context) (*colstore.Table, error) {
	if !f.useFused {
		return f.fallback.Execute(ctx)
	}
	return f.run(ctx)
}

// shape summarizes the pipeline as driver→stages→sink.
func (f *Fused) shape() string {
	parts := make([]string, 0, len(f.stages)+2)
	if f.scan != nil {
		parts = append(parts, "scan "+f.scan.Table)
	} else {
		parts = append(parts, "input")
	}
	for _, st := range f.stages {
		parts = append(parts, st.stageName())
	}
	switch {
	case f.group != nil:
		parts = append(parts, "group-by")
	case f.order != nil:
		parts = append(parts, "sort")
	default:
		parts = append(parts, "materialize")
	}
	return strings.Join(parts, "→")
}

// run executes the fused pipeline proper.
func (f *Fused) run(ctx *Context) (*colstore.Table, error) {
	st, err := f.start(ctx)
	if err != nil {
		return nil, err
	}
	for _, stage := range f.stages {
		var err error
		switch s := stage.(type) {
		case filterStage:
			err = st.applyFilter(s.pred)
		case projectStage:
			err = st.applyProject(s.cols)
		case renameStage:
			err = st.applyRename(s.pairs)
		case probeStage:
			err = st.applyProbe(&s)
		}
		if err != nil {
			return nil, err
		}
	}
	switch {
	case f.group != nil:
		return st.sinkGroup(f.group)
	case f.order != nil:
		return st.sinkOrder(f.order)
	default:
		return st.sinkPlain()
	}
}

// start resolves the driver and evaluates the scan predicate (the
// pipeline's first selection), leaving the state dense when there is
// none.
func (f *Fused) start(ctx *Context) (*fusedState, error) {
	var driver *colstore.Table
	var err error
	if f.scan != nil {
		driver, err = ctx.Cat.Table(f.scan.Table)
		if err != nil {
			return nil, err
		}
		if len(f.scan.Columns) > 0 {
			driver, err = driver.Project(f.scan.Columns...)
			if err != nil {
				return nil, err
			}
		}
		ctx.Ctr.TouchedBaseBytes += driver.SizeBytes()
	} else {
		driver, err = f.input.Execute(ctx)
		if err != nil {
			return nil, err
		}
	}
	observe(ctx, driver)
	st := &fusedState{ctx: ctx, driver: driver, v: fused.NewVectors(driver.NumRows())}
	st.scope = make([]binding, driver.NumCols())
	for i, fld := range driver.Schema {
		st.scope[i] = binding{name: fld.Name, kind: bindDriver, col: driver.Cols[i]}
	}
	if f.scan != nil && f.scan.Pred != nil {
		sel, err := parallelSel(ctx, driver, f.scan.Pred)
		if err != nil {
			return nil, err
		}
		st.v.SetSel(sel)
	}
	return st, nil
}

// bindKind says where a scope column's values live.
type bindKind uint8

const (
	// bindDriver is a driver-table column, indexed by the selection.
	bindDriver bindKind = iota
	// bindAux is a probed build-table column, indexed by an aux vector.
	bindAux
	// bindCnt is a left-count column, already aligned with the selection.
	bindCnt
	// bindExpr is an unevaluated projection expression over earlier
	// bindings.
	bindExpr
)

// binding maps a scope column name to its storage.
type binding struct {
	name string
	kind bindKind
	col  colstore.Column // driver/aux: the underlying column
	aux  int             // aux/cnt: index into Vectors.Aux / Vectors.Cnt
	expr exec.Expr       // expr: the defining expression
	deps []binding       // expr: bindings referenced, snapshotted at definition
}

// fusedState is the execution state of one fused pipeline run.
type fusedState struct {
	ctx    *Context
	driver *colstore.Table
	v      *fused.Vectors
	scope  []binding
}

func (st *fusedState) resolve(name string) (binding, error) {
	for _, b := range st.scope {
		if b.name == name {
			return b, nil
		}
	}
	return binding{}, fmt.Errorf("plan: fused pipeline: no column %q in scope", name)
}

func (st *fusedState) resolveAll(names []string) ([]binding, error) {
	out := make([]binding, len(names))
	for i, n := range names {
		b, err := st.resolve(n)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// applyFilter narrows the pipeline by a predicate. Driver-only
// predicates (before any probe) evaluate straight through the selection
// vector; anything touching probed or computed columns evaluates over a
// compact mini-table of just the referenced columns.
func (st *fusedState) applyFilter(pred exec.Pred) error {
	names, _ := predCols(pred) // validated at compile time
	bs, err := st.resolveAll(names)
	if err != nil {
		return err
	}
	driverOnly := len(st.v.Aux) == 0 && len(st.v.Cnt) == 0
	for _, b := range bs {
		if b.kind != bindDriver {
			driverOnly = false
			break
		}
	}
	if driverOnly {
		view, err := bindingView(bs)
		if err != nil {
			return err
		}
		if st.v.Dense() {
			sel, err := parallelSel(st.ctx, view, pred)
			if err != nil {
				return err
			}
			st.v.SetSel(sel)
			return nil
		}
		sel, err := narrowSelParallel(st.ctx, view, pred, st.v.Sel)
		if err != nil {
			return err
		}
		st.v.SetSel(sel)
		return nil
	}
	mini, err := st.materializeTable(bs)
	if err != nil {
		return err
	}
	keep, err := parallelSel(st.ctx, mini, pred)
	if err != nil {
		return err
	}
	st.v.Narrow(keep, st.ctx.Ctr)
	return nil
}

// bindingView assembles a zero-copy driver-length table over driver
// bindings, named per the current scope.
func bindingView(bs []binding) (*colstore.Table, error) {
	schema := make(colstore.Schema, len(bs))
	cols := make([]colstore.Column, len(bs))
	for i, b := range bs {
		schema[i] = colstore.Field{Name: b.name, Type: b.col.Type()}
		cols[i] = b.col
	}
	return colstore.NewTable("", schema, cols)
}

// narrowSelParallel narrows an explicit selection by a predicate through
// the morsel scheduler. Chunk boundaries depend only on the selection
// length, and narrowed chunks concatenate in chunk order, so the result
// is identical at every worker count.
func narrowSelParallel(ctx *Context, t *colstore.Table, pred exec.Pred, sel []int32) ([]int32, error) {
	w := ctx.workers()
	n := len(sel)
	if w == 1 || n < ctx.parallelMinRows() {
		return pred.Sel(t, sel, ctx.Ctr)
	}
	nm := exec.NumMorsels(n, ctx.morselRows())
	outs := make([][]int32, nm)
	err := exec.RunMorsels(w, n, ctx.morselRows(), ctx.Ctr, func(m, lo, hi int, ctr *exec.Counters) error {
		s, err := pred.Sel(t, sel[lo:hi], ctr)
		if err != nil {
			return err
		}
		outs[m] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, s := range outs {
		total += len(s)
	}
	out := make([]int32, 0, total)
	for _, s := range outs {
		out = append(out, s...)
	}
	ctx.Ctr.MergeBytes += int64(total) * 4
	return out, nil
}

// applyProject rewrites the scope: plain column references re-bind under
// their output name, computed expressions stay lazy (bindExpr) and
// evaluate once, at sink cardinality.
func (st *fusedState) applyProject(cols []NamedExpr) error {
	newScope := make([]binding, 0, len(cols))
	for _, ne := range cols {
		if c, ok := ne.Expr.(exec.Col); ok {
			b, err := st.resolve(c.Name)
			if err != nil {
				return err
			}
			b.name = ne.Name
			newScope = append(newScope, b)
			continue
		}
		names, _ := exprCols(ne.Expr) // validated at compile time
		deps, err := st.resolveAll(names)
		if err != nil {
			return err
		}
		newScope = append(newScope, binding{name: ne.Name, kind: bindExpr, expr: ne.Expr, deps: deps})
	}
	st.scope = newScope
	return nil
}

func (st *fusedState) applyRename(pairs [][2]string) error {
	for _, pr := range pairs {
		found := false
		for i := range st.scope {
			if st.scope[i].name == pr[0] {
				st.scope[i].name = pr[1]
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("plan: rename: no column %q", pr[0])
		}
	}
	return nil
}

// applyProbe is the in-pipeline half of a hash join: the build side is a
// pipeline breaker executed as a normal subplan, then the current
// survivors probe it without materializing the probe side. The build
// strategy (radix vs chained) and the Bloom pre-filter reuse the vector
// planner's decisions verbatim — with the probe cardinality taken from
// the live selection, which equals the vector path's materialized probe
// row count — so both engines always pick the same physical join.
func (st *fusedState) applyProbe(ps *probeStage) error {
	ctx := st.ctx
	w, mr := ctx.workers(), ctx.morselRows()
	build, err := ps.build.Execute(ctx)
	if err != nil {
		return err
	}
	bsp := ctx.Trace.Begin("join-build", fmt.Sprintf("build [%s]", strings.Join(ps.buildKeys, ",")))
	bk, err := joinKeysParallel(ctx, build, ps.buildKeys)
	if err != nil {
		ctx.Trace.EndErr(bsp)
		return err
	}
	probeRows := st.v.Len()
	var jt exec.JoinIndex
	var rt probeKernel
	if sj, serr := ctx.buildSpillJoiner(bk, probeRows); serr != nil {
		ctx.Trace.EndErr(bsp)
		return serr
	} else if sj != nil {
		// Same spill decision as the vector path: probeRows (the live
		// selection) equals the vector engine's materialized probe count,
		// so both engines spill or not identically.
		rt = sj
	} else if radix, why := chooseRadix(len(bk), probeRows, ctx.llcBytes()); radix {
		target := ctx.llcBytes()
		bits := exec.RadixBits(len(bk), exec.RadixBuildBytesPerRow, target/2)
		ksp := ctx.Trace.Begin("join-partition",
			fmt.Sprintf("radix %d-way, %d pass(es); %s", 1<<bits, exec.RadixPasses(bits), why))
		rp, err := exec.RadixPartitionKeys(bk, nil, bits, w, mr, ctx.Ctr)
		if err != nil {
			ctx.Trace.EndErr(ksp)
			ctx.Trace.EndErr(bsp)
			return err
		}
		ctx.Trace.End(ksp, int64(len(bk)), int64(len(bk))*12)
		cfg := exec.RadixJoinConfig{Bloom: useBloom(len(bk), probeRows, target)}
		rt, err = exec.BuildRadixTables(rp, cfg, w, mr, ctx.Ctr)
		if err != nil {
			ctx.Trace.EndErr(bsp)
			return err
		}
	} else {
		jt, err = exec.BuildJoinTableParallel(bk, w, mr, ctx.Ctr)
		if err != nil {
			ctx.Trace.EndErr(bsp)
			return err
		}
	}
	ctx.Trace.End(bsp, int64(build.NumRows()), build.SizeBytes())

	psp := ctx.Trace.Begin("fused-probe",
		fmt.Sprintf("%s probe [%s], %d rows in flight", ps.kind, strings.Join(ps.probeKeys, ","), probeRows))
	pk, err := st.probeKeyVec(ps.probeKeys)
	if err != nil {
		ctx.Trace.EndErr(psp)
		return err
	}
	switch ps.kind {
	case Inner:
		var bi, pi []int32
		if rt != nil {
			bi, pi, err = rt.InnerJoin(pk, w, mr, ctx.Ctr)
		} else {
			bi, pi, err = exec.InnerJoinParallel(jt, pk, w, mr, ctx.Ctr)
		}
		if err != nil {
			ctx.Trace.EndErr(psp)
			return err
		}
		for _, fld := range build.Schema {
			if _, err := st.resolve(fld.Name); err == nil {
				ctx.Trace.EndErr(psp)
				return fmt.Errorf("duplicate column %q after join; rename one side", fld.Name)
			}
		}
		st.v.ExpandInner(pi, bi, ctx.Ctr)
		auxIdx := len(st.v.Aux) - 1
		for i, fld := range build.Schema {
			st.scope = append(st.scope, binding{name: fld.Name, kind: bindAux, col: build.Cols[i], aux: auxIdx})
		}
	case Semi:
		var sel []int32
		if rt != nil {
			sel, err = rt.SemiJoin(pk, w, mr, ctx.Ctr)
		} else {
			sel, err = exec.SemiJoinParallel(jt, pk, w, mr, ctx.Ctr)
		}
		if err != nil {
			ctx.Trace.EndErr(psp)
			return err
		}
		st.v.Narrow(sel, ctx.Ctr)
	case Anti:
		var sel []int32
		if rt != nil {
			sel, err = rt.AntiJoin(pk, w, mr, ctx.Ctr)
		} else {
			sel, err = exec.AntiJoinParallel(jt, pk, w, mr, ctx.Ctr)
		}
		if err != nil {
			ctx.Trace.EndErr(psp)
			return err
		}
		st.v.Narrow(sel, ctx.Ctr)
	case LeftCount:
		var counts []int64
		if rt != nil {
			counts, err = rt.CountPerProbe(pk, w, mr, ctx.Ctr)
		} else {
			counts, err = exec.CountPerProbeParallel(jt, pk, w, mr, ctx.Ctr)
		}
		if err != nil {
			ctx.Trace.EndErr(psp)
			return err
		}
		st.v.AppendCounts(counts, ctx.Ctr)
		name := ps.countAs
		if name == "" {
			name = "match_count"
		}
		st.scope = append(st.scope, binding{name: name, kind: bindCnt, aux: len(st.v.Cnt) - 1})
	default:
		ctx.Trace.EndErr(psp)
		return fmt.Errorf("plan: unknown join kind %d", ps.kind)
	}
	ctx.Trace.End(psp, int64(st.v.Len()), 0)
	return nil
}

// probeKeyVec extracts the probe-side join keys for the current
// survivors directly from the bound columns — the values the vector path
// would read from its materialized probe table, without the
// materialization.
func (st *fusedState) probeKeyVec(names []string) ([]int64, error) {
	one := func(name string) ([]int64, error) {
		b, err := st.resolve(name)
		if err != nil {
			return nil, err
		}
		switch b.kind {
		case bindDriver:
			return exec.KeysFromColumn(b.col, st.v.Sel, st.ctx.Ctr)
		case bindAux:
			return exec.KeysFromColumn(b.col, st.v.Aux[b.aux], st.ctx.Ctr)
		default:
			col, err := st.materializeBinding(b)
			if err != nil {
				return nil, err
			}
			return exec.KeysFromColumn(col, nil, st.ctx.Ctr)
		}
	}
	switch len(names) {
	case 1:
		return one(names[0])
	case 2:
		hi, err := one(names[0])
		if err != nil {
			return nil, err
		}
		lo, err := one(names[1])
		if err != nil {
			return nil, err
		}
		return exec.CombineKeys(hi, lo, 31, st.ctx.Ctr)
	default:
		return nil, fmt.Errorf("plan: joins support one or two key columns, got %d", len(names))
	}
}

// materializeBinding produces one column of length Len() for a binding.
// Prefer materializeTable for several bindings — it batches the gather.
func (st *fusedState) materializeBinding(b binding) (colstore.Column, error) {
	t, err := st.materializeTable([]binding{b})
	if err != nil {
		return nil, err
	}
	return t.Cols[0], nil
}

// materializeTable gathers the given bindings into a table aligned with
// the current survivors — the single materialization point of a fused
// pipeline. Driver columns (and each probed build table's columns)
// gather as one batch, charged exactly like the vector engine's gather;
// count columns are already aligned; computed expressions evaluate here,
// at survivor cardinality, over their materialized dependencies.
func (st *fusedState) materializeTable(bs []binding) (*colstore.Table, error) {
	ctx := st.ctx
	cols := make([]colstore.Column, len(bs))

	// Batch the gathers per source: driver bindings share v.Sel, each
	// aux group shares its aux vector.
	type group struct {
		idx []int
		sel []int32
	}
	var driverG group
	auxG := map[int]*group{}
	for i, b := range bs {
		switch b.kind {
		case bindDriver:
			driverG.idx = append(driverG.idx, i)
		case bindAux:
			g := auxG[b.aux]
			if g == nil {
				g = &group{sel: st.v.Aux[b.aux]}
				auxG[b.aux] = g
			}
			g.idx = append(g.idx, i)
		case bindCnt:
			cols[i] = &colstore.Int64s{V: st.v.Cnt[b.aux]}
		case bindExpr:
			c, err := st.evalComputed(b)
			if err != nil {
				return nil, err
			}
			cols[i] = c
		}
	}
	gatherGroup := func(g *group, sel []int32) error {
		if len(g.idx) == 0 {
			return nil
		}
		sub := make([]binding, len(g.idx))
		for j, i := range g.idx {
			sub[j] = bs[i]
		}
		view, err := bindingView(sub)
		if err != nil {
			return err
		}
		var out *colstore.Table
		if sel == nil {
			out = view // dense: zero-copy, like an unfiltered scan
		} else {
			out, err = gather(ctx, view, sel)
			if err != nil {
				return err
			}
		}
		for j, i := range g.idx {
			cols[i] = out.Cols[j]
		}
		return nil
	}
	if err := gatherGroup(&driverG, st.v.Sel); err != nil {
		return nil, err
	}
	// Aux groups materialize in aux order for deterministic charging.
	for aux := 0; aux < len(st.v.Aux); aux++ {
		if g, ok := auxG[aux]; ok {
			if err := gatherGroup(g, g.sel); err != nil {
				return nil, err
			}
		}
	}

	schema := make(colstore.Schema, len(bs))
	for i, b := range bs {
		schema[i] = colstore.Field{Name: b.name, Type: cols[i].Type()}
	}
	return colstore.NewTable("", schema, cols)
}

// evalComputed materializes a lazy projection expression at survivor
// cardinality: its dependencies gather first, then the expression kernel
// runs morsel-parallel over them. Expression kernels are elementwise, so
// evaluating over the gathered survivors is bit-identical to the vector
// engine's evaluate-then-gather.
func (st *fusedState) evalComputed(b binding) (colstore.Column, error) {
	dep, err := st.materializeTable(b.deps)
	if err != nil {
		return nil, err
	}
	return evalExprParallel(st.ctx, dep, b.expr)
}

// sinkGroup feeds the survivors to the group-by sink through a narrow
// table holding only the key columns and aggregate inputs, then runs the
// vector engine's aggregation verbatim — same rows, same order, same
// morsel boundaries, hence bit-identical groups and sums.
func (st *fusedState) sinkGroup(g *GroupBy) (*colstore.Table, error) {
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, k := range g.Keys {
		add(k)
	}
	for _, spec := range g.Aggs {
		if spec.Arg != nil {
			cs, _ := exprCols(spec.Arg) // validated at compile time
			for _, c := range cs {
				add(c)
			}
		}
	}
	var bs []binding
	if len(names) == 0 {
		// Pure COUNT(*): any column carries the cardinality.
		bs = st.scope[:1]
	} else {
		// Keep scope order so charging is deterministic.
		for _, b := range st.scope {
			if seen[b.name] {
				bs = append(bs, b)
				seen[b.name] = false
			}
		}
		for _, n := range names {
			if seen[n] {
				return nil, fmt.Errorf("plan: fused pipeline: no column %q in scope", n)
			}
		}
	}
	in, err := st.materializeTable(bs)
	if err != nil {
		return nil, err
	}
	return g.aggregate(st.ctx, in)
}

// sinkOrder materializes the full scope (the exact table the vector
// chain would have produced) and runs the shared sort kernels.
func (st *fusedState) sinkOrder(o *OrderBy) (*colstore.Table, error) {
	ctx := st.ctx
	in, err := st.materializeTable(st.scope)
	if err != nil {
		return nil, err
	}
	var out *colstore.Table
	if o.N > 0 {
		out, err = exec.TopNParallel(in, o.Keys, o.N, ctx.workers(), ctx.morselRows(), ctx.Ctr)
	} else {
		out, err = exec.SortTableParallel(in, o.Keys, ctx.workers(), ctx.morselRows(), ctx.Ctr)
	}
	if err != nil {
		return nil, err
	}
	observe(ctx, in, out)
	return out, nil
}

// sinkPlain materializes the full scope: the pipeline's output feeds a
// pipeline breaker (join build, limit, function node) or is the query
// result.
func (st *fusedState) sinkPlain() (*colstore.Table, error) {
	out, err := st.materializeTable(st.scope)
	if err != nil {
		return nil, err
	}
	observe(st.ctx, out)
	return out, nil
}

// predCols lists the column names a predicate reads, reporting false for
// predicate types the compiler cannot analyze (which then break the
// pipeline at that filter).
func predCols(p exec.Pred) ([]string, bool) {
	switch v := p.(type) {
	case exec.CmpI:
		return []string{v.Column}, true
	case exec.CmpF:
		return []string{v.Column}, true
	case exec.CmpD:
		return []string{v.Column}, true
	case exec.DateRange:
		return []string{v.Column}, true
	case exec.FloatRange:
		return []string{v.Column}, true
	case exec.StrEq:
		return []string{v.Column}, true
	case exec.StrIn:
		return []string{v.Column}, true
	case exec.InI:
		return []string{v.Column}, true
	case exec.Like:
		return []string{v.Column}, true
	case exec.ColCmpD:
		return []string{v.A, v.B}, true
	case exec.ColCmpI:
		return []string{v.A, v.B}, true
	case exec.ColCmpF:
		return []string{v.A, v.B}, true
	case exec.And:
		return predListCols(v.Preds)
	case exec.Or:
		return predListCols(v.Preds)
	case exec.TruePred:
		return nil, true
	default:
		return nil, false
	}
}

func predListCols(ps []exec.Pred) ([]string, bool) {
	var out []string
	for _, p := range ps {
		cs, ok := predCols(p)
		if !ok {
			return nil, false
		}
		out = append(out, cs...)
	}
	return dedupNames(out), true
}

// exprCols lists the column names an expression reads, reporting false
// for expression types the compiler cannot analyze.
func exprCols(e exec.Expr) ([]string, bool) {
	switch v := e.(type) {
	case exec.Col:
		return []string{v.Name}, true
	case exec.ConstF:
		return nil, true
	case exec.Arith:
		l, ok := exprCols(v.L)
		if !ok {
			return nil, false
		}
		r, ok := exprCols(v.R)
		if !ok {
			return nil, false
		}
		return dedupNames(append(l, r...)), true
	case exec.YearExpr:
		return exprCols(v.Arg)
	case exec.PrefixExpr:
		return []string{v.Col}, true
	case exec.CaseWhenF:
		p, ok := predCols(v.Pred)
		if !ok {
			return nil, false
		}
		t, ok := exprCols(v.Then)
		if !ok {
			return nil, false
		}
		el, ok := exprCols(v.Else)
		if !ok {
			return nil, false
		}
		return dedupNames(append(append(p, t...), el...)), true
	default:
		return nil, false
	}
}

func dedupNames(names []string) []string {
	seen := make(map[string]bool, len(names))
	out := names[:0]
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Auto-mode cost estimation. The estimate prices only what differs
// between the engines: the vector path's per-boundary gathers against
// the fused path's selective accesses plus single sink gather. Estimated
// selectivities are fixed constants — the decision must depend only on
// the plan and the catalog, never on execution order or worker count, so
// re-dispatched cluster partitions plan identically.
const (
	// autoSelFilter is the assumed fraction of rows surviving a filter.
	autoSelFilter = 0.5
	// autoSelSemi is the assumed fraction surviving a semi or anti join.
	autoSelSemi = 0.5
)

// decideMode picks the execution mode for one compiled pipeline and
// explains the choice.
func decideMode(ctx *Context, f *Fused) (bool, string) {
	if ctx.Exec == ExecFused {
		return true, "exec=fused"
	}
	if f.scan == nil {
		return false, "auto: non-scan driver, keeping vector"
	}
	t, err := ctx.Cat.Table(f.scan.Table)
	if err != nil {
		return false, "auto: driver table unknown, keeping vector"
	}
	if len(f.scan.Columns) > 0 {
		if p, err := t.Project(f.scan.Columns...); err == nil {
			t = p
		}
	}
	rows := t.NumRows()
	if rows < ctx.parallelMinRows() {
		return false, fmt.Sprintf("auto: driver %d rows below fusion threshold %d", rows, ctx.parallelMinRows())
	}
	vec, fus := estimateModes(f, t)
	model := hardware.DefaultModel()
	pi := hardware.Pi()
	tv := model.OperatorTime(&pi, vec, 1)
	tf := model.OperatorTime(&pi, fus, 1)
	if tf <= tv {
		return true, fmt.Sprintf("auto: fused saves %v (est %v vs %v on %s)", tv-tf, tf, tv, pi.Name)
	}
	return false, fmt.Sprintf("auto: vector faster by %v (est %v vs %v on %s)", tf-tv, tv, tf, pi.Name)
}

// estimateModes builds the differential work profiles of the two
// engines for one pipeline: vec carries the vector path's intermediate
// materializations, fus the fused path's selective accesses and final
// gather. Shared work (predicate kernels, probe kernels, aggregation)
// appears in neither.
func estimateModes(f *Fused, driver *colstore.Table) (vec, fus exec.Counters) {
	rows := float64(driver.NumRows())
	width := float64(driver.SizeBytes()) / rows
	ncols := int64(driver.NumCols())

	chargeGatherAt := func(c *exec.Counters, r, w float64, nc int64) {
		c.TuplesMaterialized += int64(r)
		c.BytesMaterialized += int64(r * w)
		c.SeqBytes += int64(r * w)
		c.RandomAccesses += int64(r) * nc
	}
	chargeGather := func(c *exec.Counters, r float64) { chargeGatherAt(c, r, width, ncols) }

	// A group-by sink materializes only the key and aggregate-argument
	// columns; everything else is priced at full driver width.
	sinkWidth, sinkCols := width, ncols
	if f.group != nil {
		need := append([]string(nil), f.group.Keys...)
		for _, a := range f.group.Aggs {
			if cols, ok := exprCols(a.Arg); ok {
				need = append(need, cols...)
			}
		}
		if n := int64(len(dedupNames(need))); n > 0 && n < ncols {
			sinkWidth = width * float64(n) / float64(ncols)
			sinkCols = n
		}
	}

	cur := rows
	if f.scan.Pred != nil {
		cur *= autoSelFilter
		chargeGather(&vec, cur) // vector gathers the filtered scan
	}
	computed := 0
	for _, st := range f.stages {
		switch s := st.(type) {
		case filterStage:
			fus.RandomAccesses += int64(cur) // fused re-reads through the selection
			cur *= autoSelFilter
			chargeGather(&vec, cur)
		case projectStage:
			for _, ne := range s.cols {
				if _, ok := ne.Expr.(exec.Col); !ok {
					computed++
					vec.SeqBytes += int64(cur) * 16 // eval + materialize at current cardinality
					vec.BytesMaterialized += int64(cur) * 8
				}
			}
		case probeStage:
			fus.RandomAccesses += int64(cur) // selective key extraction
			switch s.kind {
			case Semi, Anti:
				cur *= autoSelSemi
			}
			chargeGather(&vec, cur) // vector gathers the join output
		case renameStage:
			// Renames touch metadata only; no cost either way.
		}
	}
	// Fused pays one gather at the sink (narrowed to the needed columns
	// for group-by sinks), plus the deferred computed columns at final
	// cardinality.
	chargeGatherAt(&fus, cur, sinkWidth, sinkCols)
	fus.SeqBytes += int64(cur) * 16 * int64(computed)
	fus.BytesMaterialized += int64(cur) * 8 * int64(computed)
	return vec, fus
}
