package plan

import (
	"crypto/sha256"
	"encoding/hex"
)

// Fingerprint returns a stable identity for a plan: the SHA-256 of its
// Explain rendering, hex-encoded. Explain includes every semantic
// input — operator shapes, column names, predicate constants, limits —
// so two plans share a fingerprint exactly when they compute the same
// result over the same (immutable) registered tables. The serving
// layer uses it as a result-cache key; it is NOT a cache key across
// data changes, which the engine's register-then-query lifecycle rules
// out.
//
// The fingerprint is computed on the logical plan as written, before
// Compile's execution-mode rewrites: fused and vectorized execution of
// the same plan are byte-identical by contract, so they must share a
// cache entry.
func Fingerprint(n Node) string {
	sum := sha256.Sum256([]byte(Explain(n)))
	return hex.EncodeToString(sum[:])
}
