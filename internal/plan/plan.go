// Package plan implements the physical query plans of the WimPi OLAP
// engine. A plan is a tree of Node values; executing a node materializes
// a result table, in the operator-at-a-time style of column stores like
// MonetDB (the system used in the paper's TPC-H study).
//
// Plans are built directly by query definitions (package tpch) and by
// library users; there is no SQL front end. The executor records all work
// in an exec.Counters so the hardware layer can simulate runtimes for the
// paper's ten comparison points.
package plan

import (
	"context"
	"fmt"
	"strings"

	"wimpi/internal/colstore"
	"wimpi/internal/exec"
	"wimpi/internal/obs"
	"wimpi/internal/spill"
)

// Catalog resolves table names to tables. *engine.DB implements Catalog.
type Catalog interface {
	// Table returns the named base table.
	Table(name string) (*colstore.Table, error)
}

// Context carries everything a plan needs to execute.
type Context struct {
	// Cat resolves base tables.
	Cat Catalog
	// Ctr accumulates the work performed.
	Ctr *exec.Counters
	// Workers bounds intra-query parallelism; values < 1 mean one.
	Workers int
	// MinParallelRows is the smallest input split across workers; below
	// it coordination overhead dominates. Values < 1 select
	// DefaultMinParallelRows.
	MinParallelRows int
	// MorselRows is the fixed morsel granularity for parallel operators.
	// Values < 1 select exec.DefaultMorselRows. Morsel boundaries depend
	// only on input size, never on Workers, so results are bit-identical
	// at every degree of parallelism.
	MorselRows int
	// LLCBytes is the last-level-cache budget the planner sizes
	// partitioned joins and aggregations against. Zero selects
	// DefaultLLCBytes; negative disables the partitioned paths entirely.
	// Like MorselRows it must never vary with Workers: the partitioned
	// vs. direct decision depends only on input cardinalities and this
	// budget, so results stay bit-identical at every degree of
	// parallelism, including cluster re-dispatch.
	LLCBytes int64
	// Trace, when non-nil, collects an operator span tree during
	// execution. A nil tracer is a valid no-op, so operators call it
	// unconditionally.
	Trace *obs.Tracer
	// Exec selects the execution style: vector (the default),
	// fused, or auto (see ExecMode). Like LLCBytes it may change which
	// code runs but never the result: the fused engine is byte-identical
	// to the vector engine at every worker count.
	Exec ExecMode
	// Ctx, when non-nil, cancels the query: kernels observe it at every
	// morsel boundary, the failing operator unwinds, and RunContext
	// returns the cancellation cause instead of a partial result.
	Ctx context.Context
	// Sched, when non-nil, is a pre-built scheduling handle (typically
	// pool-attached via exec.Pool.Attach) that overrides Ctx. The caller
	// that attached it must release it; execution only borrows it.
	Sched *exec.Sched
	// MemLimitBytes, when positive, bounds the query's observed live
	// intermediate memory. Exceeding it cancels the query with a
	// *MemLimitError at the next operator or morsel boundary — unless the
	// plan contains a spillable operator and SpillDir is set, in which
	// case the budget instead drives the spill scheduler and the query
	// degrades smoothly through charged disk I/O.
	MemLimitBytes int64
	// SpillDir, when non-empty, enables budget-bounded spilling: joins
	// whose state would exceed MemLimitBytes stream radix partitions
	// through a bounded spill area created under this directory. Empty
	// keeps the cancel-only budget behavior.
	SpillDir string
	// SpillAreaBytes, when positive, bounds the on-disk spill area
	// (spill.DefaultAreaLimit otherwise).
	SpillAreaBytes int64

	// spillOK records whether the compiled plan contains a spillable
	// operator; RunContext sets it before execution and clears it after.
	spillOK bool
	// spillArea is the query's lazily created spill area, closed (and its
	// files removed) by RunContext when the query finishes.
	spillArea *spill.Area
}

// area returns the query's spill area, creating it on first use.
func (c *Context) area() (*spill.Area, error) {
	if c.spillArea == nil {
		a, err := spill.NewArea(c.SpillDir, c.SpillAreaBytes)
		if err != nil {
			return nil, err
		}
		c.spillArea = a
	}
	return c.spillArea, nil
}

// DefaultMinParallelRows is the default parallelism threshold.
const DefaultMinParallelRows = 1 << 15

// DefaultLLCBytes is the planning cache budget when Context.LLCBytes is
// zero: the Raspberry Pi 3B+'s 512 KiB shared L2, the smallest LLC among
// the paper's comparison points. Sizing partitions for the smallest
// cache keeps partitioned plans cache-resident on every profile.
const DefaultLLCBytes = 512 << 10

func (c *Context) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

func (c *Context) parallelMinRows() int {
	if c.MinParallelRows < 1 {
		return DefaultMinParallelRows
	}
	return c.MinParallelRows
}

func (c *Context) morselRows() int {
	if c.MorselRows < 1 {
		return exec.DefaultMorselRows
	}
	return c.MorselRows
}

// llcBytes resolves the planning cache budget; 0 means the partitioned
// paths are disabled.
func (c *Context) llcBytes() int64 {
	switch {
	case c.LLCBytes < 0:
		return 0
	case c.LLCBytes == 0:
		return DefaultLLCBytes
	default:
		return c.LLCBytes
	}
}

// Node is one operator of a physical plan.
type Node interface {
	// Execute materializes the operator's result.
	Execute(ctx *Context) (*colstore.Table, error)
	// Explain renders the operator and its inputs, one per line, with the
	// given indentation depth.
	Explain(depth int) string
}

// Explain renders a whole plan tree.
func Explain(n Node) string { return n.Explain(0) }

func pad(depth int) string { return strings.Repeat("  ", depth) }

// Run executes a plan against a catalog with fresh counters, returning
// the result table and the recorded work.
func Run(cat Catalog, workers int, n Node) (*colstore.Table, exec.Counters, error) {
	return RunContext(&Context{Cat: cat, Workers: workers}, n)
}

// RunContext executes a plan under a caller-configured context (worker
// count, morsel granularity, LLC budget, exec mode, cancellation). A nil
// Ctr gets fresh counters. Fused and auto modes compile the plan first;
// the input tree is never mutated.
func RunContext(ctx *Context, n Node) (*colstore.Table, exec.Counters, error) {
	if ctx.Ctr == nil {
		ctx.Ctr = &exec.Counters{}
	}
	sched, release := ctx.attachSched()
	compiled := Compile(ctx, n)
	if ctx.SpillDir != "" && ctx.MemLimitBytes > 0 {
		ctx.spillOK = hasSpillableJoin(compiled)
	}
	t, err := compiled.Execute(ctx)
	ctx.spillOK = false
	if a := ctx.spillArea; a != nil {
		ctx.spillArea = nil
		if cerr := a.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err == nil {
		// A cancellation that lands after the last kernel call must not
		// let a complete-looking result escape a query the caller already
		// gave up on.
		err = sched.Err()
	}
	release()
	if err != nil {
		return nil, exec.Counters{}, err
	}
	return t, *ctx.Ctr, nil
}

// MemLimitError is the cancellation cause when a query's observed live
// intermediate memory exceeds Context.MemLimitBytes.
type MemLimitError struct {
	// Limit is the configured budget in bytes.
	Limit int64
	// Observed is the live-byte high-water mark that tripped it.
	Observed int64
}

func (e *MemLimitError) Error() string {
	return fmt.Sprintf("plan: query exceeded memory budget: %d bytes live, limit %d", e.Observed, e.Limit)
}

// attachSched wires the query's scheduling handle onto its counters for
// the duration of one execution: kernels then observe cancellation (and
// pool membership) through the counters they already receive. The
// returned release detaches the handle before the counters are
// snapshotted into results — the handle is scheduling state, never part
// of the work profile. Handles built here (from Ctx/MemLimitBytes) are
// also released; a caller-provided Sched is only borrowed.
func (c *Context) attachSched() (*exec.Sched, func()) {
	s := c.Sched
	owned := false
	if s == nil {
		if c.Ctx == nil && c.MemLimitBytes <= 0 {
			return nil, func() {}
		}
		s = exec.NewSched(c.Ctx)
		c.Sched = s
		owned = true
	}
	c.Ctr.SetSched(s)
	return s, func() {
		c.Ctr.SetSched(nil)
		if owned {
			c.Sched = nil
			s.Release()
		}
	}
}

// observe records a node output in the live-memory high-water mark and
// enforces the query's memory budget: crossing it cancels the scheduling
// handle, so every kernel stops at its next morsel boundary and the
// query unwinds with the budget error as its cause.
func observe(ctx *Context, tables ...*colstore.Table) {
	var n int64
	for _, t := range tables {
		if t != nil {
			n += t.SizeBytes()
		}
	}
	cur := ctx.Ctr.PeakLiveBytes
	if n > cur {
		ctx.Ctr.ObserveLiveBytes(n)
	}
	// When the plan has a spillable operator, the budget is enforced by
	// the spill scheduler (planned, priced degradation) rather than by
	// cancellation.
	if lim := ctx.MemLimitBytes; lim > 0 && !ctx.spillOK && ctx.Ctr.PeakLiveBytes > lim {
		ctx.Sched.Cancel(&MemLimitError{Limit: lim, Observed: ctx.Ctr.PeakLiveBytes})
	}
}

// Scan reads a base table, optionally pushing down a projection and a
// filter predicate. With neither, the scan is a zero-copy view.
type Scan struct {
	// Table names the base table.
	Table string
	// Columns optionally projects the scan to the listed columns.
	Columns []string
	// Pred optionally filters rows before materialization.
	Pred exec.Pred
}

// Execute implements Node.
func (s *Scan) Execute(ctx *Context) (*colstore.Table, error) {
	t, err := ctx.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	if len(s.Columns) > 0 {
		t, err = t.Project(s.Columns...)
		if err != nil {
			return nil, err
		}
	}
	ctx.Ctr.TouchedBaseBytes += t.SizeBytes()
	if s.Pred == nil {
		observe(ctx, t)
		return t, nil
	}
	sel, err := parallelSel(ctx, t, s.Pred)
	if err != nil {
		return nil, err
	}
	out, err := gather(ctx, t, sel)
	if err != nil {
		return nil, err
	}
	observe(ctx, t, out)
	return out, nil
}

// Explain implements Node.
func (s *Scan) Explain(depth int) string {
	b := fmt.Sprintf("%sscan %s", pad(depth), s.Table)
	if len(s.Columns) > 0 {
		b += fmt.Sprintf(" [%s]", strings.Join(s.Columns, ", "))
	}
	if s.Pred != nil {
		b += " where " + s.Pred.String()
	}
	return b + "\n"
}

// Filter materializes the input rows satisfying Pred.
type Filter struct {
	// Input is the child operator.
	Input Node
	// Pred is the filter predicate.
	Pred exec.Pred
}

// Execute implements Node.
func (f *Filter) Execute(ctx *Context) (*colstore.Table, error) {
	in, err := f.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	sel, err := parallelSel(ctx, in, f.Pred)
	if err != nil {
		return nil, err
	}
	out, err := gather(ctx, in, sel)
	if err != nil {
		return nil, err
	}
	observe(ctx, in, out)
	return out, nil
}

// Explain implements Node.
func (f *Filter) Explain(depth int) string {
	return fmt.Sprintf("%sfilter %s\n%s", pad(depth), f.Pred, f.Input.Explain(depth+1))
}

// NamedExpr pairs an output column name with its defining expression.
type NamedExpr struct {
	// Name is the output column name.
	Name string
	// Expr computes the column.
	Expr exec.Expr
}

// Project evaluates expressions over the input, producing a table with
// exactly the listed columns. Plain column references are zero-copy.
type Project struct {
	// Input is the child operator.
	Input Node
	// Cols are the output columns.
	Cols []NamedExpr
}

// Execute implements Node.
func (p *Project) Execute(ctx *Context) (*colstore.Table, error) {
	in, err := p.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	schema := make(colstore.Schema, len(p.Cols))
	cols := make([]colstore.Column, len(p.Cols))
	for i, ne := range p.Cols {
		c, err := evalExprParallel(ctx, in, ne.Expr)
		if err != nil {
			return nil, fmt.Errorf("plan: project %s: %w", ne.Name, err)
		}
		schema[i] = colstore.Field{Name: ne.Name, Type: c.Type()}
		cols[i] = c
	}
	out, err := colstore.NewTable("", schema, cols)
	if err != nil {
		return nil, err
	}
	observe(ctx, in, out)
	return out, nil
}

// Explain implements Node.
func (p *Project) Explain(depth int) string {
	parts := make([]string, len(p.Cols))
	for i, ne := range p.Cols {
		parts[i] = fmt.Sprintf("%s=%s", ne.Name, ne.Expr)
	}
	return fmt.Sprintf("%sproject %s\n%s", pad(depth), strings.Join(parts, ", "), p.Input.Explain(depth+1))
}

// Rename relabels columns (for example the second nation table in Q7).
type Rename struct {
	// Input is the child operator.
	Input Node
	// Pairs lists {from, to} column name pairs.
	Pairs [][2]string
}

// Execute implements Node.
func (r *Rename) Execute(ctx *Context) (*colstore.Table, error) {
	in, err := r.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	schema := make(colstore.Schema, len(in.Schema))
	copy(schema, in.Schema)
	for _, pr := range r.Pairs {
		i := in.Schema.Index(pr[0])
		if i < 0 {
			return nil, fmt.Errorf("plan: rename: no column %q", pr[0])
		}
		schema[i].Name = pr[1]
	}
	return colstore.NewTable(in.Name, schema, in.Cols)
}

// Explain implements Node.
func (r *Rename) Explain(depth int) string {
	parts := make([]string, len(r.Pairs))
	for i, pr := range r.Pairs {
		parts[i] = pr[0] + "->" + pr[1]
	}
	return fmt.Sprintf("%srename %s\n%s", pad(depth), strings.Join(parts, ", "), r.Input.Explain(depth+1))
}

// Limit returns the first N rows of its input.
type Limit struct {
	// Input is the child operator.
	Input Node
	// N is the row budget.
	N int
}

// Execute implements Node.
func (l *Limit) Execute(ctx *Context) (*colstore.Table, error) {
	in, err := l.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	if l.N < in.NumRows() {
		return in.Slice(0, l.N), nil
	}
	return in, nil
}

// Explain implements Node.
func (l *Limit) Explain(depth int) string {
	return fmt.Sprintf("%slimit %d\n%s", pad(depth), l.N, l.Input.Explain(depth+1))
}

// OrderBy sorts its input; with N > 0 it keeps only the first N rows.
type OrderBy struct {
	// Input is the child operator.
	Input Node
	// Keys are the sort keys, most significant first.
	Keys []exec.SortKey
	// N, when positive, limits the output (ORDER BY ... LIMIT N).
	N int
}

// Execute implements Node.
func (o *OrderBy) Execute(ctx *Context) (*colstore.Table, error) {
	in, err := o.Input.Execute(ctx)
	if err != nil {
		return nil, err
	}
	var out *colstore.Table
	if o.N > 0 {
		out, err = exec.TopNParallel(in, o.Keys, o.N, ctx.workers(), ctx.morselRows(), ctx.Ctr)
	} else {
		out, err = exec.SortTableParallel(in, o.Keys, ctx.workers(), ctx.morselRows(), ctx.Ctr)
	}
	if err != nil {
		return nil, err
	}
	observe(ctx, in, out)
	return out, nil
}

// Explain implements Node.
func (o *OrderBy) Explain(depth int) string {
	parts := make([]string, len(o.Keys))
	for i, k := range o.Keys {
		parts[i] = k.Column
		if k.Desc {
			parts[i] += " desc"
		}
	}
	s := fmt.Sprintf("%sorder by %s", pad(depth), strings.Join(parts, ", "))
	if o.N > 0 {
		s += fmt.Sprintf(" limit %d", o.N)
	}
	return s + "\n" + o.Input.Explain(depth+1)
}

// gather materializes t's rows named by sel and charges the write. When
// tracing, the materialization gets its own child span — it is usually
// the memory-bandwidth-bound part of a filter or join.
func gather(ctx *Context, t *colstore.Table, sel []int32) (*colstore.Table, error) {
	sp := ctx.Trace.Begin("gather", fmt.Sprintf("gather %d rows x %d cols", len(sel), t.NumCols()))
	out, err := exec.GatherTable(t, sel, ctx.workers(), ctx.morselRows(), ctx.Ctr)
	if err != nil {
		ctx.Trace.EndErr(sp)
		return nil, err
	}
	ctx.Ctr.TuplesMaterialized += int64(len(sel))
	ctx.Ctr.BytesMaterialized += out.SizeBytes()
	ctx.Ctr.SeqBytes += out.SizeBytes()
	ctx.Ctr.RandomAccesses += int64(len(sel)) * int64(t.NumCols())
	ctx.Trace.End(sp, int64(len(sel)), out.SizeBytes())
	return out, nil
}
