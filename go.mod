module wimpi

go 1.22
