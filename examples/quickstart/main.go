// Example quickstart: generate a small TPC-H dataset, build a query plan
// with the engine's public operator API, execute it, and simulate how
// long it would take on a Raspberry Pi 3B+ versus a Xeon server.
package main

import (
	"fmt"
	"log"

	"wimpi/internal/colstore"
	"wimpi/internal/engine"
	"wimpi/internal/exec"
	"wimpi/internal/hardware"
	"wimpi/internal/plan"
	"wimpi/internal/tpch"
)

func main() {
	// 1. Generate a deterministic TPC-H dataset (SF 0.01 = ~60k
	//    lineitem rows) and register it with an in-memory engine.
	data := tpch.Generate(tpch.Config{SF: 0.01, Seed: 1})
	db := engine.NewDB(engine.Config{Workers: 2})
	data.RegisterAll(db)
	fmt.Printf("loaded %v tables, %.1f MB\n", db.TableNames(), float64(db.SizeBytes())/(1<<20))

	// 2. Build a plan by hand: revenue per ship mode for 1995 shipments.
	//    (Any SQL-shaped pipeline composes from Scan/Filter/Join/GroupBy/
	//    OrderBy nodes; package tpch contains all 22 TPC-H plans.)
	p := &plan.OrderBy{
		Keys: []exec.SortKey{{Column: "revenue", Desc: true}},
		Input: &plan.GroupBy{
			Input: &plan.Scan{
				Table:   "lineitem",
				Columns: []string{"l_shipmode", "l_extendedprice", "l_discount", "l_shipdate"},
				Pred: exec.DateRange{
					Column: "l_shipdate",
					Lo:     colstore.MustDate("1995-01-01"),
					Hi:     colstore.MustDate("1996-01-01"),
				},
			},
			Keys: []string{"l_shipmode"},
			Aggs: []plan.AggSpec{
				{Name: "revenue", Func: plan.Sum,
					Arg: exec.Mul(exec.Col{Name: "l_extendedprice"},
						exec.Sub(exec.ConstF{V: 1}, exec.Col{Name: "l_discount"}))},
				{Name: "shipments", Func: plan.Count},
			},
		},
	}
	fmt.Println("\nplan:")
	fmt.Print(db.Explain(p))

	// 3. Execute and inspect the result.
	res, err := db.Run(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresult:")
	fmt.Print(engine.FormatTable(res.Table, 10))

	// 4. The work counters recorded during execution feed the hardware
	//    model: what would this query cost on the paper's machines?
	model := hardware.DefaultModel()
	pi := hardware.Pi()
	e5, _ := hardware.ByName("op-e5")
	tPi := model.QueryTime(&pi, res.Counters, pi.TotalCores())
	tE5 := model.QueryTime(&e5, res.Counters, e5.TotalCores())
	fmt.Printf("\nsimulated: Pi 3B+ %.3fs, op-e5 %.3fs (Pi %.1fx slower, %.0fx cheaper)\n",
		tPi.Seconds(), tE5.Seconds(), tPi.Seconds()/tE5.Seconds(), 2*e5.MSRPUSD/35)
}
