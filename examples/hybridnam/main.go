// Example hybridnam: the paper's Section III-C.1 future direction — a
// hybrid (network-attached-memory style) cluster where a traditional
// server fronts the wimpy workers. The server hosts the replicated
// tables and takes over memory-hungry single-node work (TPC-H Q13),
// while the Pi workers keep scanning their lineitem partitions.
package main

import (
	"fmt"
	"log"

	"wimpi/internal/cluster"
	"wimpi/internal/hardware"
	"wimpi/internal/tpch"
)

func main() {
	const (
		nodes = 6
		sf    = 0.05
		seed  = 42
	)
	full := tpch.Generate(tpch.Config{SF: sf, Seed: seed})
	lc, err := cluster.StartLocal(nodes, cluster.WorkerConfig{
		Source: cluster.SharedSource(full),
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()
	if _, err := lc.Coordinator.Load(sf, seed); err != nil {
		log.Fatal(err)
	}
	hybrid, err := cluster.NewHybrid(lc.Coordinator, full, 4)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate at the paper's geometry: each Pi node has RAM scaled to
	// the dataset, so Q13's working set (orders + hash table) does not
	// fit on one Pi — the paper's worst case.
	opt := cluster.DefaultSimOptions()
	opt.NodeProfile.RAMBytes = int64(float64(hardware.Pi().RAMBytes) * sf / 10)
	server, err := hardware.ByName("op-e5")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hybrid cluster: %d Pi workers + 1 op-e5 front end, TPC-H SF %g\n\n", nodes, sf)
	for _, q := range []int{6, 13} {
		plain, err := lc.Coordinator.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		plainSim := cluster.Simulate(plain, opt)

		hres, err := hybrid.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		hybridSim := cluster.SimulateHybrid(hres, opt, server)

		where := "workers"
		if hres.NodesUsed == 0 {
			where = "front end"
		}
		fmt.Printf("Q%-3d plain WimPi: %8.3fs (thrash: %v)\n", q, plainSim.Total, plainSim.Thrashed)
		fmt.Printf("     hybrid:      %8.3fs (ran on %s)\n", hybridSim.Total, where)
		if hres.NodesUsed == 0 {
			fmt.Printf("     -> the server front end absorbs the memory-hungry work (%.0fx faster)\n",
				plainSim.Total/hybridSim.Total)
		} else {
			fmt.Println("     -> scan-parallel queries stay on the wimpy workers (server only merges)")
		}
		fmt.Println()
	}
}
