// Example costreport: the paper's Section III analysis as a library
// call — run a workload once, then rank every Table I machine by
// absolute speed, purchase-price efficiency, and energy efficiency.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"wimpi/internal/costmodel"
	"wimpi/internal/engine"
	"wimpi/internal/hardware"
	"wimpi/internal/tpch"
)

func main() {
	data := tpch.Generate(tpch.Config{SF: 0.05, Seed: 42})
	db := engine.NewDB(engine.Config{Workers: 2})
	data.RegisterAll(db)

	// The workload: the paper's eight representative queries.
	model := hardware.DefaultModel()
	profiles := hardware.Profiles()
	total := make(map[string]time.Duration)
	for _, q := range tpch.RepresentativeQueries {
		res, err := db.Run(tpch.MustQuery(q))
		if err != nil {
			log.Fatal(err)
		}
		for i := range profiles {
			p := &profiles[i]
			total[p.Name] += model.QueryTime(p, res.Counters, p.TotalCores())
		}
	}

	fmt.Println("workload: TPC-H Q1,3,4,5,6,13,14,19 (simulated totals)")
	names := make([]string, 0, len(total))
	for n := range total {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return total[names[i]] < total[names[j]] })
	fmt.Println("\nby absolute runtime:")
	for _, n := range names {
		fmt.Printf("  %-12s %8.3fs\n", n, total[n].Seconds())
	}

	pi := total["Pi 3B+"]
	fmt.Println("\nPi 3B+ vs the On-Premises servers (the paper's Figures 5 and 7):")
	for _, name := range []string{"op-e5", "op-gold"} {
		p, err := hardware.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		msrp, err := costmodel.MSRPImprovement(pi, 1, total[name], &p)
		if err != nil {
			log.Fatal(err)
		}
		energy, err := costmodel.EnergyImprovement(pi, 1, total[name], &p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  vs %-8s %5.1fx slower, but %5.1fx better per dollar, %5.1fx better per joule\n",
			name, pi.Seconds()/total[name].Seconds(), msrp, energy)
	}

	fmt.Println("\nPi 3B+ vs the Cloud instances (the paper's Figure 6, hourly):")
	for _, p := range hardware.CloudProfiles() {
		p := p
		hourly, err := costmodel.HourlyImprovement(pi, 1, total[p.Name], &p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  vs %-12s %8.0fx better per dollar-hour\n", p.Name, hourly)
	}
}
