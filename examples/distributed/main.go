// Example distributed: spin up an in-process WimPi cluster (eight
// workers on real loopback TCP connections with Pi-rate throttled
// links), partition TPC-H across it, run distributed queries, and
// compare against single-node execution — the paper's Table III workflow
// in miniature.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"wimpi/internal/cluster"
	"wimpi/internal/cluster/faultconn"
	"wimpi/internal/colstore"
	"wimpi/internal/engine"
	"wimpi/internal/tpch"
)

func main() {
	const (
		nodes = 8
		sf    = 0.02
		seed  = 42
	)

	// Workers throttled to the Pi 3B+'s effective 220 Mbit/s link.
	lc, err := cluster.StartLocal(nodes, cluster.WorkerConfig{
		LinkBandwidthBps: cluster.PiLinkBandwidthBps,
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()

	// First, reproduce the paper's iperf sanity check (§II-C.3).
	bps, err := cluster.MeasureLinkBandwidth(lc.Coordinator, 0, 2<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node link bandwidth: %.0f Mbit/s (paper measured ~220)\n", bps/1e6)

	// Load: each worker generates its partition (lineitem split on
	// l_orderkey, everything else replicated).
	stats, err := lc.Coordinator.Load(sf, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded SF %g across %d nodes in %v\n", sf, nodes, stats.Duration.Round(time.Millisecond))
	for i, b := range stats.NodeBytes {
		fmt.Printf("  node %d holds %.1f MB\n", i, float64(b)/(1<<20))
	}

	// A single-node engine over the same data, for verification.
	single := engine.NewDB(engine.Config{Workers: 2})
	tpch.Generate(tpch.Config{SF: sf, Seed: seed}).RegisterAll(single)

	for _, q := range []int{1, 6, 13} {
		dres, err := lc.Coordinator.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		sres, err := single.Run(tpch.MustQuery(q))
		if err != nil {
			log.Fatal(err)
		}
		match := dres.Table.NumRows() == sres.Table.NumRows()
		fmt.Printf("\nQ%d: %d rows from %d node(s), %.1f KB over the wire, matches single-node: %v\n",
			q, dres.Table.NumRows(), dres.NodesUsed, float64(dres.BytesReceived)/1024, match)
		fmt.Print(engine.FormatTable(dres.Table, 4))
		sim := cluster.Simulate(dres, cluster.DefaultSimOptions())
		fmt.Printf("simulated on real WimPi hardware: %.3fs (node %.3fs + network %.3fs + merge %.3fs)\n",
			sim.Total, sim.NodeSeconds, sim.NetworkSeconds, sim.MergeSeconds)
	}

	faultTolerance(sf, seed)
}

// faultTolerance demonstrates the cluster runtime surviving injected
// failures: a crashed node's partition is re-dispatched to a healthy
// peer (which regenerates it deterministically), and the merged result
// stays byte-identical to the fault-free run.
func faultTolerance(sf float64, seed uint64) {
	const nodes = 3
	fmt.Println("\n== fault tolerance ==")

	// Baseline: a clean cluster for the reference answer.
	clean, err := cluster.StartLocal(nodes, cluster.WorkerConfig{}, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer clean.Close()
	if _, err := clean.Coordinator.Load(sf, seed); err != nil {
		log.Fatal(err)
	}
	want, err := clean.Coordinator.Run(1)
	if err != nil {
		log.Fatal(err)
	}

	// Node 1 resets every query connection it is asked to serve; with
	// Redispatch, the coordinator re-issues its partition to a peer.
	plan := &faultconn.Plan{Seed: 7, Rules: []faultconn.Rule{
		{Node: 1, Op: faultconn.OpWrite, Phase: "query", Kind: faultconn.Reset, Times: -1},
	}}
	faulty, err := cluster.StartLocalFaulty(nodes, cluster.WorkerConfig{}, cluster.Config{
		WorkersPerNode: 2,
		Redispatch:     true,
		Retry:          cluster.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond},
	}, plan)
	if err != nil {
		log.Fatal(err)
	}
	defer faulty.Close()
	if _, err := faulty.Coordinator.Load(sf, seed); err != nil {
		log.Fatal(err)
	}
	got, err := faulty.Coordinator.Run(1)
	if err != nil {
		log.Fatal(err)
	}
	identical, why := colstore.TablesIdentical(want.Table, got.Table)
	fmt.Printf("Q1 with node 1 crashing every attempt: %d re-dispatches, byte-identical to fault-free run: %v%s\n",
		got.Redispatches, identical, why)

	// Without Redispatch but with AllowPartial, the same failure yields
	// a typed PartialClusterError carrying the surviving partitions.
	partial, err := cluster.StartLocalFaulty(nodes, cluster.WorkerConfig{}, cluster.Config{
		WorkersPerNode: 2,
		AllowPartial:   true,
		Retry:          cluster.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond},
	}, plan)
	if err != nil {
		log.Fatal(err)
	}
	defer partial.Close()
	if _, err := partial.Coordinator.Load(sf, seed); err != nil {
		log.Fatal(err)
	}
	res, err := partial.Coordinator.Run(1)
	var perr *cluster.PartialClusterError
	if !errors.As(err, &perr) {
		log.Fatalf("expected PartialClusterError, got %v", err)
	}
	fmt.Printf("same failure with AllowPartial: %d/%d nodes answered, failed nodes %v, %d rows of partial coverage\n",
		res.NodesUsed, perr.Total, res.FailedNodes, res.Table.NumRows())
}
