// Example distributed: spin up an in-process WimPi cluster (eight
// workers on real loopback TCP connections with Pi-rate throttled
// links), partition TPC-H across it, run distributed queries, and
// compare against single-node execution — the paper's Table III workflow
// in miniature.
package main

import (
	"fmt"
	"log"
	"time"

	"wimpi/internal/cluster"
	"wimpi/internal/engine"
	"wimpi/internal/tpch"
)

func main() {
	const (
		nodes = 8
		sf    = 0.02
		seed  = 42
	)

	// Workers throttled to the Pi 3B+'s effective 220 Mbit/s link.
	lc, err := cluster.StartLocal(nodes, cluster.WorkerConfig{
		LinkBandwidthBps: cluster.PiLinkBandwidthBps,
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()

	// First, reproduce the paper's iperf sanity check (§II-C.3).
	bps, err := cluster.MeasureLinkBandwidth(lc.Coordinator, 0, 2<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node link bandwidth: %.0f Mbit/s (paper measured ~220)\n", bps/1e6)

	// Load: each worker generates its partition (lineitem split on
	// l_orderkey, everything else replicated).
	stats, err := lc.Coordinator.Load(sf, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded SF %g across %d nodes in %v\n", sf, nodes, stats.Duration.Round(time.Millisecond))
	for i, b := range stats.NodeBytes {
		fmt.Printf("  node %d holds %.1f MB\n", i, float64(b)/(1<<20))
	}

	// A single-node engine over the same data, for verification.
	single := engine.NewDB(engine.Config{Workers: 2})
	tpch.Generate(tpch.Config{SF: sf, Seed: seed}).RegisterAll(single)

	for _, q := range []int{1, 6, 13} {
		dres, err := lc.Coordinator.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		sres, err := single.Run(tpch.MustQuery(q))
		if err != nil {
			log.Fatal(err)
		}
		match := dres.Table.NumRows() == sres.Table.NumRows()
		fmt.Printf("\nQ%d: %d rows from %d node(s), %.1f KB over the wire, matches single-node: %v\n",
			q, dres.Table.NumRows(), dres.NodesUsed, float64(dres.BytesReceived)/1024, match)
		fmt.Print(engine.FormatTable(dres.Table, 4))
		sim := cluster.Simulate(dres, cluster.DefaultSimOptions())
		fmt.Printf("simulated on real WimPi hardware: %.3fs (node %.3fs + network %.3fs + merge %.3fs)\n",
			sim.Total, sim.NodeSeconds, sim.NetworkSeconds, sim.MergeSeconds)
	}
}
