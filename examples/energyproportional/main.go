// Example energyproportional: the paper's Section III-B.2 argument made
// quantitative. Clusters spend much of their life idle; traditional
// servers draw high idle power, while SBC nodes draw very little and can
// be powered off individually. This example models a daily duty cycle
// and compares the energy bill of an op-gold server against WimPi
// clusters with and without fine-grained node power-off.
package main

import (
	"fmt"
	"log"
	"time"

	"wimpi/internal/costmodel"
	"wimpi/internal/hardware"
	"wimpi/internal/powersim"
)

func main() {
	gold, err := hardware.ByName("op-gold")
	if err != nil {
		log.Fatal(err)
	}
	pi := hardware.Pi()

	const (
		nodes       = 24
		activeHours = 4.0  // batch window per day
		idleHours   = 20.0 // rest of the day
		secsPerHour = 3600.0
	)
	activeS := activeHours * secsPerHour
	idleS := idleHours * secsPerHour

	goldActiveW := gold.TDPWatts * float64(gold.Sockets)
	goldIdleW := gold.IdleWatts * float64(gold.Sockets)
	wimpiActiveW := costmodel.ClusterWatts(nodes)
	wimpiIdleW := pi.IdleWatts * nodes

	server := costmodel.IdleDutyCycleJoules(goldActiveW, goldIdleW, activeS, idleS, false)
	wimpiOn := costmodel.IdleDutyCycleJoules(wimpiActiveW, wimpiIdleW, activeS, idleS, false)
	wimpiOff := costmodel.IdleDutyCycleJoules(wimpiActiveW, wimpiIdleW, activeS, idleS, true)

	kwh := func(j float64) float64 { return j / 3.6e6 }
	fmt.Printf("daily duty cycle: %g h active, %g h idle\n\n", activeHours, idleHours)
	fmt.Printf("%-34s %8.2f kWh/day\n", "op-gold (always on)", kwh(server))
	fmt.Printf("%-34s %8.2f kWh/day\n", fmt.Sprintf("WimPi x%d (always on)", nodes), kwh(wimpiOn))
	fmt.Printf("%-34s %8.2f kWh/day\n", fmt.Sprintf("WimPi x%d (idle nodes off)", nodes), kwh(wimpiOff))
	fmt.Printf("\nWimPi saves %.0f%% always-on, %.0f%% with node power-off\n",
		100*(1-wimpiOn/server), 100*(1-wimpiOff/server))

	// Fine-grained elasticity: keep only a 4-node "hot" slice alive
	// during idle hours for interactive queries.
	hot := 4
	wimpiHot := costmodel.IdleDutyCycleJoules(wimpiActiveW, pi.IdleWatts*float64(hot), activeS, idleS, false)
	fmt.Printf("keeping a %d-node hot slice instead: %.2f kWh/day (%.0f%% saved vs server)\n",
		hot, kwh(wimpiHot), 100*(1-wimpiHot/server))

	// Annualized electricity cost at the US average rate the paper uses.
	const usdPerKWh = 0.1317
	fmt.Printf("\nannual electricity: op-gold $%.0f, WimPi (off) $%.0f\n",
		kwh(server)*365*usdPerKWh, kwh(wimpiOff)*365*usdPerKWh)

	// The same argument, dynamically: a discrete-event simulation of a
	// bursty batch workload under two power policies.
	cluster := powersim.Cluster{Nodes: nodes, Power: powersim.PiPower(), BootDelay: 5 * time.Second}
	trace := powersim.PeriodicTrace(15*time.Minute, time.Minute, 6, 4, 8)
	fmt.Println("\npower-policy simulation (8 bursts of 4 six-node jobs, 15 min apart):")
	for _, policy := range []powersim.Policy{powersim.AlwaysOn{}, powersim.OnDemand{Min: 2}} {
		rep, err := powersim.Simulate(cluster, policy, trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %8.0f J   mean latency %6s   max %6s\n",
			rep.Policy, rep.EnergyJoules,
			rep.MeanLatency.Round(time.Second), rep.MaxLatency.Round(time.Second))
	}
}
