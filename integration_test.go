// End-to-end tests that build the real command binaries and drive them
// as separate OS processes — including a true multi-process WimPi
// cluster over TCP.
package wimpi_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// binaries builds every cmd/ binary once into a shared temp dir.
func binaries(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("integration test")
	}
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "wimpi-bin")
		if buildErr != nil {
			return
		}
		for _, name := range []string{"wimpi", "wimpi-bench", "wimpi-cluster", "wimpi-microbench"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, name), "./cmd/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = fmt.Errorf("build %s: %v\n%s", name, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binDir
}

func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLISingleNodeQuery(t *testing.T) {
	out := run(t, "wimpi", "-sf", "0.005", "-q", "6", "-simulate")
	for _, want := range []string{"Q6", "revenue", "Pi 3B+", "op-e5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIExplain(t *testing.T) {
	out := run(t, "wimpi", "-q", "3", "-explain")
	for _, want := range []string{"hash join", "scan lineitem", "order by revenue desc"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestCLIMicrobench(t *testing.T) {
	out := run(t, "wimpi-microbench", "-host-only", "-parallel", "1")
	for _, want := range []string{"whetstone", "dhrystone", "sysbench", "membw", "MWIPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("microbench missing %q:\n%s", want, out)
		}
	}
}

func TestCLIBenchTinyStudy(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.txt")
	out := run(t, "wimpi-bench", "-sf", "0.01", "-distsf", "0.01", "-sizes", "2,4", "-out", report)
	if !strings.Contains(out, "== Paper claims ==") {
		t.Fatalf("no claims section:\n%s", out)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== Table II ==", "Pi 3B+ x2", "== Figure 7 =="} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Scale-robust claims must hold even at SF 0.01.
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "[MISS]") {
			t.Errorf("scale-robust claim failed at tiny SF: %s", line)
		}
	}
}

func TestMultiProcessCluster(t *testing.T) {
	bin := binaries(t)

	// Two workers as real OS processes on preallocated ports.
	addrs := make([]string, 2)
	workers := make([]*exec.Cmd, 2)
	for i := range workers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close() // free the port for the worker process
		workers[i] = exec.Command(filepath.Join(bin, "wimpi-cluster"),
			"-mode", "worker", "-listen", addrs[i], "-throttle", "0")
		if err := workers[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, w := range workers {
			w.Process.Kill()
			w.Wait()
		}
	}()

	// Wait for both workers to listen.
	for _, addr := range addrs {
		deadline := time.Now().Add(10 * time.Second)
		for {
			conn, err := net.Dial("tcp", addr)
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %s did not come up", addr)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	out := run(t, "wimpi-cluster",
		"-mode", "coord", "-addrs", strings.Join(addrs, ","),
		"-sf", "0.005", "-q", "6,13", "-simulate")
	for _, want := range []string{"Q6:", "Q13:", "1 nodes", "2 nodes", "simulated WimPi wall-clock"} {
		if !strings.Contains(out, want) {
			t.Errorf("coordinator output missing %q:\n%s", want, out)
		}
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, ex := range []string{"quickstart", "distributed", "costreport", "energyproportional", "hybridnam"} {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+ex)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", ex)
			}
		})
	}
}

func TestCLIAnalyzeAndSnapshot(t *testing.T) {
	out := run(t, "wimpi", "-sf", "0.005", "-q", "3", "-analyze")
	for _, want := range []string{"analyzed", "operator", "scan lineitem", "rnd-acc"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
	dir := filepath.Join(t.TempDir(), "snap")
	run(t, "wimpi", "-sf", "0.005", "-q", "6", "-save", dir, "-rows", "0")
	out = run(t, "wimpi", "-load", dir, "-q", "6", "-rows", "1")
	if !strings.Contains(out, "revenue") {
		t.Errorf("snapshot-loaded query output missing revenue:\n%s", out)
	}
	// The snapshot directory holds one file per table plus a manifest.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 {
		t.Errorf("snapshot dir has %d entries, want 9", len(entries))
	}
}
