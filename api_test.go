package wimpi_test

import (
	"io"
	"strings"
	"testing"

	"wimpi"
	"wimpi/internal/plan"
)

// TestPublicFacade drives the whole library through the root package's
// public surface, the way a downstream user would.
func TestPublicFacade(t *testing.T) {
	data := wimpi.GenerateTPCH(0.005, 7)
	db := wimpi.NewDB(2)
	data.RegisterAll(db)

	q, err := wimpi.TPCHQuery(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 1 {
		t.Fatalf("Q6 rows = %d", res.Table.NumRows())
	}
	if s := wimpi.FormatTable(res.Table, 5); !strings.Contains(s, "revenue") {
		t.Errorf("FormatTable output: %q", s)
	}

	// Custom parameters through the facade.
	p := wimpi.RandomQueryParams(3)
	qp, err := wimpi.TPCHQueryParams(6, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Run(qp); err != nil {
		t.Fatal(err)
	}
	if wimpi.DefaultQueryParams().Q1Delta != 90 {
		t.Error("default params wrong")
	}

	// Hardware simulation through the facade.
	pi := wimpi.PiProfile()
	model := wimpi.DefaultCostModel()
	if d := model.QueryTime(&pi, res.Counters, 4); d <= 0 {
		t.Error("simulated time not positive")
	}
	if len(wimpi.Profiles()) != 10 {
		t.Error("profiles missing")
	}
	if _, err := wimpi.ProfileByName("op-e5"); err != nil {
		t.Error(err)
	}

	// A hand-built plan using the re-exported node types.
	var node wimpi.PlanNode = &plan.Limit{Input: &plan.Scan{Table: "orders"}, N: 3}
	lres, err := db.Run(node)
	if err != nil || lres.Table.NumRows() != 3 {
		t.Fatalf("custom plan: %v", err)
	}

	// Distributed execution through the facade.
	lc, err := wimpi.StartLocalCluster(2, wimpi.WorkerConfig{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if _, err := lc.Coordinator.Load(0.005, 7); err != nil {
		t.Fatal(err)
	}
	dres, err := lc.Coordinator.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Table.NumRows() != res.Table.NumRows() {
		t.Error("distributed result diverges")
	}
}

func TestPublicStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full study")
	}
	opt := wimpi.DefaultStudyOptions()
	opt.SF, opt.DistSF = 0.02, 0.02
	opt.ClusterSizes = []int{2, 4}
	study, report, err := wimpi.RunStudy(opt, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.TableII.Seconds) != 22 || !strings.Contains(report, "== Paper claims ==") {
		t.Error("study incomplete")
	}
}
