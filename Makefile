GO ?= go

.PHONY: build test race chaos bench-scaling

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-detector pass over every package that runs parallel kernels.
race:
	$(GO) test -race ./internal/exec/... ./internal/plan/... ./internal/engine/... ./internal/cluster/...

# Fault-injection suite: chaos tests, wire-protocol hardening, and the
# faultconn package itself, all under the race detector.
chaos:
	$(GO) test -race -timeout 120s -run 'Chaos|Fault|Frame|Close|Worker' ./internal/cluster/...

# Parallel speedup on Q1/Q3/Q6/Q18 at 1/2/4/8 workers (SF via WIMPI_BENCH_SF).
bench-scaling:
	$(GO) test -run '^$$' -bench BenchmarkParallelScaling -benchtime 3x .
