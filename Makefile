GO ?= go

# Per-target fuzz budget for `make fuzz`. Keep it short by default; CI
# and soak runs override it (FUZZTIME=2m make fuzz).
FUZZTIME ?= 10s

.PHONY: build test vet lint lint-report lint-bench race chaos fuzz explain-smoke serve-smoke spill-smoke check bench-scaling bench-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Stock go vet passes.
vet:
	$(GO) vet ./...

# wimpi-lint: the custom invariant suite — the dataflow-backed v2
# analyzers (taintflow, pathcost, hotalloc, exhaustive) on top of the
# original passes (determinism, cost accounting, context discipline,
# goroutine hygiene, wire-protocol error handling), plus the directive
# audit that fails on stale `//lint:allow` lines.
# -novet because the stock passes run under `make vet`.
lint:
	$(GO) run ./cmd/wimpi-lint -novet ./...

# Machine-readable lint output for CI: JSON findings on stdout and a
# SARIF 2.1.0 log for code-scanning upload. Exit status still reflects
# findings, so `|| true` it when only the artifacts are wanted.
lint-report:
	$(GO) run ./cmd/wimpi-lint -novet -json -sarif lint.sarif ./... > lint.json

# Smoke-test the analyzer suite's own cost: the whole-tree run (type
# check + CFG construction + fixpoint solving for every function) must
# finish inside the budget, or the lint gate has become too slow to
# keep in the inner loop. LINT_DEADLINE override for slow machines.
LINT_DEADLINE ?= 120s
lint-bench:
	$(GO) run ./cmd/wimpi-lint -novet -deadline $(LINT_DEADLINE) ./...

# Race-detector pass over every package.
race:
	$(GO) test -race ./...

# Fault-injection suite: chaos tests, wire-protocol hardening, and the
# faultconn package itself, all under the race detector.
chaos:
	$(GO) test -race -timeout 120s -run 'Chaos|Fault|Frame|Close|Worker' ./internal/cluster/...

# Native Go fuzzing over the wire decoder, the fault-plan parser, and
# the compressed int encodings. Targets run one at a time (the fuzz
# engine's requirement).
fuzz:
	$(GO) test -fuzz FuzzReadFrame -fuzztime $(FUZZTIME) -run '^$$' ./internal/cluster/
	$(GO) test -fuzz FuzzReadMsg -fuzztime $(FUZZTIME) -run '^$$' ./internal/cluster/
	$(GO) test -fuzz FuzzParsePlan -fuzztime $(FUZZTIME) -run '^$$' ./internal/cluster/
	$(GO) test -fuzz FuzzLexer -fuzztime $(FUZZTIME) -run '^$$' ./internal/sql/
	$(GO) test -fuzz FuzzParser -fuzztime $(FUZZTIME) -run '^$$' ./internal/sql/
	$(GO) test -fuzz FuzzBitPackRoundTrip -fuzztime $(FUZZTIME) -run '^$$' ./internal/colstore/
	$(GO) test -fuzz FuzzFoRRoundTrip -fuzztime $(FUZZTIME) -run '^$$' ./internal/colstore/

# EXPLAIN ANALYZE smoke test: run Q1 with -explain and assert the span
# tree came back non-empty (the scan operator must appear with its sim
# column). Catches wiring regressions between engine.RunTraced, the
# plan-layer spans, and the obs renderer that unit tests can miss.
explain-smoke:
	$(GO) run ./cmd/wimpi -sf 0.01 -q 1 -explain | tee /dev/stderr | grep -q 'scan lineitem'

# Serving-path smoke test: a short closed-loop soak of the multi-tenant
# front door — 64 concurrent clients over the TPC-H mix, every result
# verified byte-identical to serial execution. The load generator exits
# non-zero on any query error, any divergence, or a p99 above the bound,
# and leaves BENCH_serve.json (QPS, p50/p95/p99) behind.
SERVE_P99_MS ?= 20000
serve-smoke:
	$(GO) run ./cmd/wimpi-serve -load -sf 0.05 -clients 64 -queries 5 \
		-max-p99-ms $(SERVE_P99_MS) -bench-out BENCH_serve.json

# Budget determinism smoke test: force Q3 through the spill scheduler
# with a budget far below its join state and require the same answer as
# the unlimited run (the engine suite proves this across all 22 queries;
# this catches CLI-level wiring of -mem-budget).
spill-smoke:
	$(GO) run ./cmd/wimpi -sf 0.01 -q 3 -rows 3 | grep -v -e '(host)' -e '^generating' > /tmp/wimpi-spill-free.out
	$(GO) run ./cmd/wimpi -sf 0.01 -q 3 -rows 3 -mem-budget 64KB | grep -v -e '(host)' -e '^generating' > /tmp/wimpi-spill-budget.out
	diff /tmp/wimpi-spill-free.out /tmp/wimpi-spill-budget.out
	@echo "spill-smoke: budgeted output identical"

# The tier-1 gate: everything a change must pass before merging.
check: build test vet lint race explain-smoke serve-smoke spill-smoke

# Parallel speedup on Q1/Q3/Q6/Q18 at 1/2/4/8 workers (SF via WIMPI_BENCH_SF).
bench-scaling:
	$(GO) test -run '^$$' -bench BenchmarkParallelScaling -benchtime 3x .

# Radix-partitioned vs chained hash join sweep (BENCH_join.json, with
# host and simulated-Pi speedups reported side by side), fused-vs-vector
# execution on Q1/Q6/Q14 (BENCH_fused.json), and the budget-bounded
# spill vs swap-thrash trajectory (BENCH_spill.json).
# WIMPI_BENCH_BIG=1 adds a join build side that also overflows a
# server-class host LLC.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkJoinRadixVsChained|BenchmarkFusedVsVector|BenchmarkSpill' -benchtime 3x .
