// Package wimpi is a from-scratch Go reproduction of "The Case for
// In-Memory OLAP on 'Wimpy' Nodes" (ICDE 2021): a columnar in-memory
// OLAP engine, the TPC-H workload, a TCP-distributed WimPi cluster, the
// paper's microbenchmarks and execution strategies, calibrated hardware
// profiles for its ten comparison points, and a harness that regenerates
// every table and figure of the evaluation.
//
// The implementation lives under internal/; see README.md for the
// architecture overview, DESIGN.md for the system inventory and
// substitution notes, and EXPERIMENTS.md for paper-vs-measured results.
// The root bench_test.go exposes one benchmark per paper artifact plus
// ablations of the design choices DESIGN.md calls out.
package wimpi
