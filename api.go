package wimpi

// This file is the library's public facade. The implementation lives
// under internal/ (per the repository layout); these aliases and
// constructors re-export the surface a downstream user needs: the
// engine, the TPC-H workload, the hardware simulation, the distributed
// cluster, and the study harness.

import (
	"io"

	"wimpi/internal/cluster"
	"wimpi/internal/colstore"
	"wimpi/internal/core"
	"wimpi/internal/engine"
	"wimpi/internal/exec"
	"wimpi/internal/hardware"
	"wimpi/internal/plan"
	"wimpi/internal/tpch"
)

// Engine types.
type (
	// DB is the in-memory columnar database.
	DB = engine.DB
	// EngineConfig configures a DB.
	EngineConfig = engine.Config
	// Result is a query outcome: answer table, work profile, host time.
	Result = engine.Result
	// Table is an immutable columnar table.
	Table = colstore.Table
	// Schema describes a table's columns.
	Schema = colstore.Schema
	// WorkCounters is the work profile kernels record during execution.
	WorkCounters = exec.Counters
	// PlanNode is one operator of a physical query plan (see package
	// plan for Scan, Filter, HashJoin, GroupBy, OrderBy, ...).
	PlanNode = plan.Node
)

// NewDB returns an empty database with the given parallelism.
func NewDB(workers int) *DB {
	return engine.NewDB(engine.Config{Workers: workers})
}

// FormatTable renders a result table as aligned text.
func FormatTable(t *Table, maxRows int) string { return engine.FormatTable(t, maxRows) }

// TPC-H workload.
type (
	// TPCHConfig parameterizes dataset generation (scale factor, seed).
	TPCHConfig = tpch.Config
	// TPCHDataset is a generated set of the eight TPC-H tables.
	TPCHDataset = tpch.Dataset
	// QueryParams carries qgen-style substitution parameters.
	QueryParams = tpch.Params
)

// GenerateTPCH builds a deterministic TPC-H dataset.
func GenerateTPCH(sf float64, seed uint64) *TPCHDataset {
	return tpch.Generate(tpch.Config{SF: sf, Seed: seed})
}

// TPCHQuery returns the physical plan for query n (1-22) with the
// specification's validation parameters.
func TPCHQuery(n int) (PlanNode, error) { return tpch.Query(n) }

// TPCHQueryParams returns query n with custom substitution parameters.
func TPCHQueryParams(n int, p QueryParams) (PlanNode, error) { return tpch.QueryP(n, p) }

// DefaultQueryParams returns the spec validation parameters;
// RandomQueryParams draws from the spec ranges.
func DefaultQueryParams() QueryParams           { return tpch.DefaultParams() }
func RandomQueryParams(seed uint64) QueryParams { return tpch.RandomParams(seed) }

// Hardware simulation.
type (
	// HardwareProfile is one of the paper's ten comparison points.
	HardwareProfile = hardware.Profile
	// CostModel converts work profiles into simulated runtimes.
	CostModel = hardware.Model
)

// Profiles returns all ten Table I comparison points; PiProfile the
// Raspberry Pi 3B+; ProfileByName a specific one.
func Profiles() []HardwareProfile                        { return hardware.Profiles() }
func PiProfile() HardwareProfile                         { return hardware.Pi() }
func ProfileByName(name string) (HardwareProfile, error) { return hardware.ByName(name) }

// DefaultCostModel returns the calibrated cost model.
func DefaultCostModel() CostModel { return hardware.DefaultModel() }

// Distributed cluster.
type (
	// Coordinator drives a WimPi cluster over TCP.
	Coordinator = cluster.Coordinator
	// LocalCluster is an in-process cluster for tests and examples.
	LocalCluster = cluster.LocalCluster
	// WorkerConfig configures one cluster node.
	WorkerConfig = cluster.WorkerConfig
	// DistResult is a distributed query outcome.
	DistResult = cluster.DistResult
	// ClusterConfig configures the coordinator: addresses, deadlines,
	// retry policy, and fault-tolerance knobs.
	ClusterConfig = cluster.Config
	// RetryPolicy shapes the capped exponential backoff for RPCs.
	RetryPolicy = cluster.RetryPolicy
	// PartialClusterError reports a degraded load or query, with the
	// failed nodes and (under AllowPartial) the partial merged result.
	PartialClusterError = cluster.PartialClusterError
	// NodeError is one node's terminal failure inside a cluster error.
	NodeError = cluster.NodeError
)

// StartLocalCluster launches n in-process workers on loopback TCP and
// returns a connected coordinator.
func StartLocalCluster(n int, cfg WorkerConfig, workersPerNode int) (*LocalCluster, error) {
	return cluster.StartLocal(n, cfg, workersPerNode)
}

// Study harness.
type (
	// StudyOptions parameterizes the full reproduction of the paper.
	StudyOptions = core.Options
	// Study holds every regenerated table and figure.
	Study = core.Study
)

// DefaultStudyOptions returns the paper-shaped configuration.
func DefaultStudyOptions() StudyOptions { return core.DefaultOptions() }

// RunStudy regenerates every table and figure of the paper's evaluation,
// streaming progress to w (which may be nil), and returns the study plus
// its rendered report.
func RunStudy(opt StudyOptions, w io.Writer) (*Study, string, error) {
	h, err := core.NewHarness(opt)
	if err != nil {
		return nil, "", err
	}
	s, err := h.Run(w)
	if err != nil {
		return nil, "", err
	}
	return s, s.Report(h), nil
}
